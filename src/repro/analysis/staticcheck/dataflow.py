"""Forward dataflow engines over the :mod:`.cfg` graphs.

Two analyses power the flow-aware rules:

:class:`TaintAnalysis`
    A may-taint lattice (variable -> set of taint tags, union at joins)
    with an orthogonal *must*-flag set (intersection at joins) for
    sanitizer tracking — "this value derives from the wall clock on
    some path" combined with "the epoch fence has run on every path".
    Policies (:class:`TaintPolicy` subclasses) decide what calls
    produce taint, what stores count as sinks, and what comparisons
    count as sanitizers.

:class:`ProtocolAnalysis`
    A protocol-order automaton: the state is the set of *possible
    event histories* (which publish stages may have already run on some
    path to this point).  Rules declare an ordered stage list plus
    checks — inversion (a later stage already ran when an earlier one
    fires), must-precede (a prerequisite ran on *every* path), and
    escape (a path leaves the function with a sequence started but not
    completed).

Both run the standard worklist-to-fixed-point loop to compute block
entry states, then replay each block once in order, firing the policy
callbacks with the exact state at each statement — so findings carry
the state that proves them.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .cfg import CFG, Block

__all__ = [
    "TaintPolicy",
    "TaintState",
    "TaintAnalysis",
    "ProtocolSpec",
    "ProtocolAnalysis",
    "expr_names",
]

Tags = FrozenSet[Tuple[str, str]]
EMPTY: Tags = frozenset()


# ----------------------------------------------------------------------
# Taint
# ----------------------------------------------------------------------


class TaintState:
    """Immutable-by-convention map of variable taints + must-flags."""

    __slots__ = ("vars", "flags")

    def __init__(self, vars: Optional[Dict[str, Tags]] = None,
                 flags: FrozenSet[str] = frozenset()):
        self.vars: Dict[str, Tags] = vars or {}
        self.flags = flags

    def copy(self) -> "TaintState":
        return TaintState(dict(self.vars), self.flags)

    def get(self, name: str) -> Tags:
        return self.vars.get(name, EMPTY)

    def join(self, other: "TaintState") -> "TaintState":
        vars: Dict[str, Tags] = dict(self.vars)
        for name, tags in other.vars.items():
            vars[name] = vars.get(name, EMPTY) | tags
        return TaintState(vars, self.flags & other.flags)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TaintState)
                and self.flags == other.flags
                and self.vars == other.vars)

    def __hash__(self) -> int:  # pragma: no cover - states live in dicts
        raise TypeError("TaintState is unhashable")


class TaintPolicy:
    """Hooks a flow rule overrides to shape the taint analysis."""

    def initial_state(self, fn: ast.AST) -> TaintState:
        return TaintState()

    def call_tags(self, node: ast.Call, arg_tags: Tags,
                  state: TaintState) -> Tags:
        """Taint tags of a call's return value (sources live here)."""
        return EMPTY

    def call_site(self, node: ast.Call, arg_tags: Tags,
                  state: TaintState) -> None:
        """Observation hook for every call (report pass only)."""

    def store(self, target: ast.expr, tags: Tags, state: TaintState,
              stmt: ast.stmt) -> None:
        """Attribute/subscript store sink (report pass only)."""

    def returned(self, node: ast.Return, tags: Tags,
                 state: TaintState) -> None:
        """Return-value hook (report pass only)."""

    def sanitize(self, test: ast.expr, state: TaintState) -> TaintState:
        """Rewrite the state after a branch/assert test evaluates."""
        return state

    def reset_on_call(self, node: ast.Call) -> bool:
        """Whether this call invalidates accumulated must-flags."""
        return False


class TaintAnalysis:
    """Run a :class:`TaintPolicy` over one function CFG."""

    def __init__(self, cfg: CFG, fn: ast.AST, policy: TaintPolicy):
        self.cfg = cfg
        self.fn = fn
        self.policy = policy
        self._report = False

    # -- expression evaluation -----------------------------------------
    def eval(self, expr: Optional[ast.expr], state: TaintState) -> Tags:
        if expr is None:
            return EMPTY
        if isinstance(expr, ast.Name):
            return state.get(expr.id)
        if isinstance(expr, ast.Call):
            arg_tags = EMPTY
            for arg in expr.args:
                arg_tags |= self.eval(
                    arg.value if isinstance(arg, ast.Starred) else arg,
                    state)
            for kw in expr.keywords:
                arg_tags |= self.eval(kw.value, state)
            # the callee expression itself may be tainted (method on a
            # tainted object keeps the taint: message[0].decode())
            func = expr.func
            if isinstance(func, ast.Attribute):
                arg_tags |= self.eval(func.value, state)
            tags = self.policy.call_tags(expr, arg_tags, state)
            if self._report:
                self.policy.call_site(expr, arg_tags, state)
            if self.policy.reset_on_call(expr):
                state.flags = frozenset()
            return tags
        if isinstance(expr, ast.Attribute):
            return self.eval(expr.value, state)
        if isinstance(expr, ast.Subscript):
            return self.eval(expr.value, state) | self.eval(
                expr.slice, state)
        if isinstance(expr, ast.BinOp):
            return self.eval(expr.left, state) | self.eval(
                expr.right, state)
        if isinstance(expr, ast.UnaryOp):
            return self.eval(expr.operand, state)
        if isinstance(expr, ast.BoolOp):
            tags = EMPTY
            for value in expr.values:
                tags |= self.eval(value, state)
            return tags
        if isinstance(expr, ast.Compare):
            tags = self.eval(expr.left, state)
            for comp in expr.comparators:
                tags |= self.eval(comp, state)
            return tags
        if isinstance(expr, ast.IfExp):
            self.eval(expr.test, state)
            return self.eval(expr.body, state) | self.eval(
                expr.orelse, state)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            tags = EMPTY
            for element in expr.elts:
                tags |= self.eval(
                    element.value if isinstance(element, ast.Starred)
                    else element, state)
            return tags
        if isinstance(expr, ast.Dict):
            tags = EMPTY
            for key in expr.keys:
                if key is not None:
                    tags |= self.eval(key, state)
            for value in expr.values:
                tags |= self.eval(value, state)
            return tags
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, state)
        if isinstance(expr, ast.JoinedStr):
            tags = EMPTY
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    tags |= self.eval(value.value, state)
            return tags
        if isinstance(expr, ast.NamedExpr):
            tags = self.eval(expr.value, state)
            self.bind(expr.target, tags, state, stmt=None)
            return tags
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            # conservative: the comprehension result carries the taint
            # of every expression inside it
            tags = EMPTY
            for node in ast.walk(expr):
                if isinstance(node, ast.Name):
                    tags |= state.get(node.id)
            return tags
        if isinstance(expr, ast.Await):
            return self.eval(expr.value, state)
        return EMPTY  # constants, lambdas, ellipsis

    # -- binding -------------------------------------------------------
    def bind(self, target: ast.expr, tags: Tags, state: TaintState,
             stmt: Optional[ast.stmt], value: Optional[ast.expr] = None
             ) -> None:
        if isinstance(target, ast.Name):
            state.vars[target.id] = tags
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements = list(target.elts)
            values: List[Optional[ast.expr]] = [None] * len(elements)
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                    value.elts) == len(elements) and not any(
                    isinstance(e, ast.Starred) for e in elements):
                values = list(value.elts)
            for element, sub_value in zip(elements, values):
                if isinstance(element, ast.Starred):
                    element = element.value
                sub_tags = (self.eval(sub_value, state)
                            if sub_value is not None else tags)
                self.bind(element, sub_tags, state, stmt, sub_value)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            if isinstance(target, ast.Subscript):
                tags = tags | self.eval(target.slice, state)
            if self._report and stmt is not None:
                self.policy.store(target, tags, state, stmt)

    # -- transfer ------------------------------------------------------
    def transfer_stmt(self, stmt: ast.stmt, state: TaintState) -> None:
        if isinstance(stmt, ast.Assign):
            tags = self.eval(stmt.value, state)
            for target in stmt.targets:
                self.bind(target, tags, state, stmt, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                tags = self.eval(stmt.value, state)
                self.bind(stmt.target, tags, state, stmt, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            tags = self.eval(stmt.value, state)
            if isinstance(stmt.target, ast.Name):
                state.vars[stmt.target.id] = (
                    state.get(stmt.target.id) | tags)
            else:
                self.bind(stmt.target, tags | self.eval(stmt.target, state),
                          state, stmt)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, state)
        elif isinstance(stmt, ast.Return):
            tags = self.eval(stmt.value, state)
            if self._report:
                self.policy.returned(stmt, tags, state)
        elif isinstance(stmt, ast.Raise):
            self.eval(stmt.exc, state)
            self.eval(stmt.cause, state)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test, state)
            new = self.policy.sanitize(stmt.test, state)
            state.vars, state.flags = new.vars, new.flags
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            tags = self.eval(stmt.iter, state)
            self.bind(stmt.target, tags, state, stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tags = self.eval(item.context_expr, state)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, tags, state, stmt)
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                state.vars[stmt.name] = EMPTY
        elif isinstance(stmt, ast.Match):
            self.eval(stmt.subject, state)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    state.vars.pop(target.id, None)
        # Pass/Import/Global/Nonlocal/def/class: no dataflow effect

    def transfer_block(self, block: Block, state: TaintState
                       ) -> TaintState:
        state = state.copy()
        for stmt in block.statements:
            self.transfer_stmt(stmt, state)
        if block.test is not None:
            self.eval(block.test, state)
            new = self.policy.sanitize(block.test, state)
            state.vars, state.flags = new.vars, new.flags
        return state

    # -- driver --------------------------------------------------------
    def run(self) -> Dict[int, TaintState]:
        """Fixed-point block entry states, then a report replay."""
        entry_states: Dict[int, TaintState] = {
            self.cfg.entry.index: self.policy.initial_state(self.fn)
        }
        worklist: List[Block] = [self.cfg.entry]
        iterations = 0
        limit = 50 * max(1, len(self.cfg.blocks))
        while worklist and iterations < limit:
            iterations += 1
            block = worklist.pop()
            state = entry_states.get(block.index)
            if state is None:
                continue
            out = self.transfer_block(block, state)
            for succ in block.successors:
                seen = entry_states.get(succ.index)
                merged = out if seen is None else seen.join(out)
                if seen is None or merged != seen:
                    entry_states[succ.index] = merged
                    if succ not in worklist:
                        worklist.append(succ)
        # report pass: replay each reachable block once, hooks armed
        self._report = True
        try:
            for block in self.cfg.blocks:
                state = entry_states.get(block.index)
                if state is not None:
                    self.transfer_block(block, state)
        finally:
            self._report = False
        return entry_states


# ----------------------------------------------------------------------
# Protocol order
# ----------------------------------------------------------------------


class ProtocolSpec:
    """One ordered publish protocol (see module docstring)."""

    def __init__(
        self,
        name: str,
        stages: Tuple[str, ...],
        classify: Callable[[ast.Call], Optional[str]],
        *,
        check_order: bool = True,
        requires: Optional[Dict[str, Tuple[str, ...]]] = None,
        check_escape: bool = False,
    ):
        self.name = name
        self.stages = stages
        self.rank = {stage: index for index, stage in enumerate(stages)}
        self.classify = classify
        self.check_order = check_order
        self.requires = requires or {}
        self.check_escape = check_escape


History = FrozenSet[FrozenSet[str]]
_START: History = frozenset({frozenset()})


class ProtocolAnalysis:
    """Evaluate one :class:`ProtocolSpec` over one function CFG.

    Violations are ``(kind, node, detail)`` tuples with ``kind`` in
    ``{"order", "requires", "escape"}``; ``node`` anchors the finding.
    The final protocol stage *completes* a sequence and resets the
    history, so loops that publish a full sequence per iteration do not
    poison the next iteration through the back edge.
    """

    def __init__(self, cfg: CFG, fn: ast.AST, spec: ProtocolSpec):
        self.cfg = cfg
        self.fn = fn
        self.spec = spec
        self.violations: List[Tuple[str, ast.AST, str]] = []
        self._report = False

    # ------------------------------------------------------------------
    def _iter_event_calls(self, stmt: ast.stmt) -> List[Tuple[ast.Call, str]]:
        """Protocol events fired by this statement, in source order.

        Marker statements (``for``/``with``/``match`` headers) only
        evaluate their header expressions here — nested bodies live in
        their own blocks.  Calls inside nested ``def``/``lambda`` run
        later (or never) and are not events of *this* statement.
        """
        events: List[Tuple[ast.Call, str]] = []
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            roots: List[ast.AST] = [stmt.iter]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            roots = [item.context_expr for item in stmt.items]
        elif isinstance(stmt, (ast.ExceptHandler,)):
            roots = []
        elif isinstance(stmt, ast.Match):
            roots = [stmt.subject]
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            roots = []
        else:
            roots = [stmt]
        skip: Set[int] = set()
        for root in roots:
            for node in ast.walk(root):
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.Lambda)):
                    for inner in ast.walk(node):
                        skip.add(id(inner))
        for root in roots:
            for node in ast.walk(root):
                if id(node) in skip or not isinstance(node, ast.Call):
                    continue
                stage = self.spec.classify(node)
                if stage is not None:
                    events.append((node, stage))
        events.sort(key=lambda pair: (pair[0].lineno, pair[0].col_offset))
        return events

    # ------------------------------------------------------------------
    def _apply_event(self, history: History, call: ast.Call, stage: str
                     ) -> History:
        spec = self.spec
        rank = spec.rank[stage]
        if self._report:
            if spec.check_order:
                later = {
                    other
                    for possible in history
                    for other in possible
                    if spec.rank[other] > rank
                }
                if later:
                    self.violations.append((
                        "order", call,
                        f"'{stage}' published after "
                        f"'{sorted(later)[0]}' on some path "
                        f"(required order: {' -> '.join(spec.stages)})",
                    ))
            for prerequisite in spec.requires.get(stage, ()):
                if any(prerequisite not in possible
                       for possible in history):
                    self.violations.append((
                        "requires", call,
                        f"'{stage}' reached without '{prerequisite}' "
                        f"on every path",
                    ))
        if rank == len(spec.stages) - 1:
            return _START  # sequence completed; next one starts fresh
        return frozenset(possible | {stage} for possible in history)

    def _check_exit(self, history: History, node: ast.AST,
                    where: str) -> None:
        if not (self._report and self.spec.check_escape):
            return
        incomplete = [possible for possible in history if possible]
        if incomplete:
            started = sorted(incomplete[0])
            final = self.spec.stages[-1]
            self.violations.append((
                "escape", node,
                f"{where} leaves a partial publish sequence "
                f"({'+'.join(started)} without '{final}')",
            ))

    def transfer_block(self, block: Block, history: History) -> History:
        for stmt in block.statements:
            for call, stage in self._iter_event_calls(stmt):
                history = self._apply_event(history, call, stage)
            if isinstance(stmt, ast.Return):
                self._check_exit(history, stmt, "early return")
            elif isinstance(stmt, ast.Raise) and id(stmt) in \
                    self.cfg.escaping_raises:
                self._check_exit(history, stmt, "unhandled raise")
        return history

    def run(self) -> List[Tuple[str, ast.AST, str]]:
        entry: Dict[int, History] = {self.cfg.entry.index: _START}
        worklist = [self.cfg.entry]
        iterations = 0
        limit = 50 * max(1, len(self.cfg.blocks))
        while worklist and iterations < limit:
            iterations += 1
            block = worklist.pop()
            history = entry.get(block.index)
            if history is None:
                continue
            out = self.transfer_block(block, history)
            for succ in block.successors:
                seen = entry.get(succ.index)
                merged = out if seen is None else (seen | out)
                if seen is None or merged != seen:
                    entry[succ.index] = merged
                    if succ not in worklist:
                        worklist.append(succ)
        self._report = True
        try:
            for block in self.cfg.blocks:
                history = entry.get(block.index)
                if history is not None:
                    out = self.transfer_block(block, history)
                    if self.cfg.exit in block.successors and not any(
                            isinstance(s, ast.Return)
                            for s in block.statements):
                        self._check_exit(out, self.fn, "fall-off exit")
        finally:
            self._report = False
        return self.violations


def expr_names(expr: ast.expr) -> Set[str]:
    """Every identifier mentioned in an expression: plain names plus
    attribute tails (``handle.epoch`` contributes ``handle`` and
    ``epoch``) — what the fence-comparison sanitizer matches on."""
    names: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names
