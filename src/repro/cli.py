"""Command-line interface for the GraphPulse reproduction.

Subcommands:

``datasets``
    List the Table IV proxy datasets and their shapes.

``run``
    Run one algorithm on one dataset proxy through a chosen engine —
    any name in the :func:`repro.core.build_engine` registry (functional
    event model, cycle-level accelerator, sliced runtime, its
    multi-process variant ``sliced-mp`` with ``--workers N``, the
    multi-accelerator ``parallel-sliced`` model, BSP, or the Ligra
    baseline) — and print convergence and event statistics.  The
    ``--json`` result payload is the engine-independent
    :class:`repro.core.RunResult` schema for every engine.
    ``--fault-rate``/``--dead-lane``/``--resilience`` enable the
    fault-injection + recovery harness on the resilient engines.

``compare``
    Run the full cross-system comparison (the Figure 10/11/12 pipeline)
    for one workload and print the speedup/traffic summary.

``resilience``
    Run a fault-injection campaign (every algorithm x fault kind cell
    at one fault rate) and report convergence/recovery rates against
    fault-free references.

``lint``
    Run the AST invariant checker (:mod:`repro.analysis.staticcheck`)
    over source paths: determinism (DET-001/DET-002), durability
    (DUR-001), engine-registry discipline (ENG-001) and recovery-path
    hygiene (RES-001 silent excepts, RES-002 unbounded IO retries).
    ``--strict`` exits 1 on any unsuppressed
    finding; ``--self-check`` proves every rule's paired fixtures
    still trigger/pass; ``--json`` emits the structured finding
    schema.

``resume``
    Continue a durable run (one started with ``repro run
    --checkpoint-dir DIR``) from its newest *verifiable* on-disk
    checkpoint: the run directory's manifest is validated against the
    re-prepared workload (graph fingerprint included), state and queue
    are restored, and the run continues to convergence with
    bit-identical final vertex state.  When the newest checkpoint
    generation is corrupt the resume walks the retained generation
    ladder backwards (replaying the spill journal forward from the
    older generation's commit horizon) before giving up;
    ``--no-fallback`` restores the strict exit-2-on-corruption
    behaviour.  The ``--json`` payload's ``resumed`` block carries the
    recovery provenance: which generation restored, whether it fell
    back, which checkpoints were skipped and the journal replay stats.
    Takes the same ``--trace``/``--metrics`` observability flags as
    ``run``, so the resumed tail of a run is as observable as its head.

``gc``
    Apply the retention policy to a durable run directory: keep the
    newest ``--keep`` verifiable checkpoint generations, drop older and
    corrupt ones plus orphaned checkpoint files, and compact the spill
    journal up to the oldest retained generation's commit horizon.
    ``--dry-run`` reports without touching disk.

``bench``
    Run the throughput suite (engine x algorithm cells on one dataset
    proxy via :mod:`repro.obs.bench`): each cell reports median
    events/sec, rounds/sec and peak RSS over warmup + repeats, written
    as a schema-versioned ``BENCH_<host-fingerprint>.json`` artifact.
    ``--check BASELINE`` exits 1 when any cell regresses more than
    ``--tolerance`` below the baseline artifact.

Typed failures (:class:`repro.errors.ReproError` subclasses — invalid
graph inputs, queue capacity overflow, watchdog halts, exhausted
recovery, corrupt checkpoints, manifest mismatches) exit with status 2
and a one-line ``error:`` message instead of a traceback; with
``--json`` they also emit a structured ``{"error": {...}}`` object.
Interrupts (SIGINT/SIGTERM) exit with status 130; on a durable run the
engine first finishes its round and flushes a final checkpoint, and the
``--json`` payload names it so the run can be continued with ``repro
resume``.

Observability flags on ``run``: ``--trace FILE`` writes a Chrome/
Perfetto trace of the run, ``--metrics FILE`` a JSONL metrics stream
(gauge samples every ``--metrics-interval`` cycles plus a final stats
record), ``--progress [N]`` prints a heartbeat line to stderr every N
engine rounds (and attaches the live metrics registry, whose snapshot
joins the JSON payload), and ``--json [FILE]`` emits the run summary as
machine-readable JSON (to stdout, replacing the human output, when no
FILE is given).

Examples::

    python -m repro datasets
    python -m repro run pagerank --dataset LJ --scale 0.2
    python -m repro run sssp --dataset WG --engine cycle --scale 0.05
    python -m repro run pagerank --dataset WG --engine cycle \
        --trace run.trace.json --metrics run.metrics.jsonl --json
    python -m repro compare cc --dataset FB --scale 0.2 --json
    python -m repro run pagerank --dataset WG --scale 0.05 \
        --checkpoint-dir runs/pr-wg
    python -m repro resume runs/pr-wg --json
    python -m repro lint src/repro --strict --json lint.json
    python -m repro bench --engines functional,sliced,bsp --repeats 3
    python -m repro bench --check benchmarks/BENCH_ci_baseline.json
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
from contextlib import ExitStack
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from . import algorithms
from .analysis import ALGORITHMS, prepare_workload, run_comparison
from .analysis.report import format_table
from .core import (
    RunResult,
    build_engine,
    engine_names,
    resilient_engine_names,
)
from .errors import (
    CheckpointCorruptError,
    GraphValidationError,
    ManifestMismatchError,
    NonConvergenceError,
    QueueCapacityError,
    ReproError,
    RunInterruptedError,
    UnrecoverableFaultError,
)
from .graph import DATASETS, dataset_names, erdos_renyi_graph, load_dataset
from .ioutil import atomic_write_bytes, atomic_write_text
from .obs import TimeSeries, Tracer, export
from .obs import bench as obs_bench
from .obs import metrics as obs_metrics
from .obs import trace as obs_trace
from .resilience import (
    FAULT_KINDS,
    FaultPlan,
    InterruptGuard,
    ResilienceConfig,
    gc_run_dir,
    resume_run,
    storagefaults,
)
from .resilience.campaign import (
    DEFAULT_ALGORITHMS,
    format_report,
    run_campaign,
)

__all__ = ["main", "build_parser"]

#: every engine the registry knows; the CLI constructs exclusively
#: through :func:`repro.core.build_engine`
ENGINES = engine_names()

#: engines that accept a ``resilience=ResilienceConfig`` argument
RESILIENT_ENGINES = resilient_engine_names()

#: engines whose --num-slices / --queue-capacity flags apply
SLICED_ENGINES = ("sliced", "sliced-mp", "sliced-hosts", "parallel-sliced")

#: version of the CLI's top-level ``--json`` payloads (run/resume/gc).
#: Bumped whenever a payload key is added, removed or re-typed, so
#: downstream tooling can gate on the shape it parses.  The nested
#: ``result`` block carries its own ``schema_version`` (the RunResult
#: schema) and bench artifacts version themselves independently.
PAYLOAD_SCHEMA_VERSION = 1


def _dead_lane(value: str) -> Tuple[int, int]:
    """Parse a ``LANE[:CYCLE]`` dead-lane spec (CYCLE defaults to 0)."""
    lane, _, cycle = value.partition(":")
    try:
        return int(lane), int(cycle) if cycle else 0
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected LANE[:CYCLE], got {value!r}"
        ) from None


def _fault_kind_list(value: str) -> Tuple[str, ...]:
    """Parse a comma-separated fault-kind list, validating each kind."""
    kinds = tuple(k.strip() for k in value.split(",") if k.strip())
    unknown = sorted(set(kinds) - set(FAULT_KINDS))
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown fault kind(s) {', '.join(unknown)}; "
            f"choose from {', '.join(FAULT_KINDS)}"
        )
    return kinds


def _algorithm_list(value: str) -> Tuple[str, ...]:
    """Parse a comma-separated algorithm list for the campaign."""
    names = tuple(a.strip() for a in value.split(",") if a.strip())
    unknown = sorted(set(names) - set(ALGORITHMS))
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown algorithm(s) {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(ALGORITHMS))}"
        )
    return names


def _engine_list(value: str) -> Tuple[str, ...]:
    """Parse a comma-separated engine list for the bench suite."""
    names = tuple(e.strip() for e in value.split(",") if e.strip())
    unknown = sorted(set(names) - set(ENGINES))
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown engine(s) {', '.join(unknown)}; "
            f"choose from {', '.join(ENGINES)}"
        )
    return names


def _workers_sweep(value: str) -> Tuple[int, ...]:
    """Parse a comma-separated worker-count sweep for the bench suite."""
    try:
        counts = tuple(int(w.strip()) for w in value.split(",") if w.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated worker counts, got {value!r}"
        ) from None
    if not counts or any(count < 1 for count in counts):
        raise argparse.ArgumentTypeError(
            f"worker counts must be >= 1, got {value!r}"
        )
    return counts


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphPulse (MICRO 2020) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "datasets", help="list the Table IV proxy datasets"
    )

    run_parser = subparsers.add_parser(
        "run", help="run one workload on one engine"
    )
    run_parser.add_argument(
        "algorithm", choices=sorted(ALGORITHMS) + ["bfs-reachability"]
    )
    run_parser.add_argument(
        "--dataset", default="LJ", choices=dataset_names()
    )
    run_parser.add_argument("--scale", type=float, default=0.2)
    run_parser.add_argument(
        "--engine", default="functional", choices=ENGINES
    )
    run_parser.add_argument(
        "--num-slices",
        type=int,
        default=2,
        metavar="N",
        help="slice count for --engine sliced (default 2)",
    )
    run_parser.add_argument(
        "--queue-capacity",
        type=int,
        default=None,
        metavar="V",
        help="queue vertex capacity for --engine sliced; slices that "
        "exceed it raise a QueueCapacityError",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker process count for --engine sliced-mp (default 2; "
        "must not exceed --num-slices)",
    )
    run_parser.add_argument(
        "--dispatch",
        choices=("barrier", "chained"),
        default=None,
        metavar="MODE",
        help="intra-pass spill visibility for --engine sliced/sliced-mp: "
        "'barrier' (default) buffers outbound spills and merges them at "
        "the pass barrier in deterministic (slice, emission) order; "
        "'chained' restores the old sequential order where slice k sees "
        "same-pass spills from slices < k",
    )
    run_parser.add_argument(
        "--hosts-dir",
        metavar="DIR",
        default=None,
        help="shared substrate directory for --engine sliced-hosts; "
        "every supervisor process pointed at the same DIR cooperates "
        "on (and can take over) the same run",
    )
    run_parser.add_argument(
        "--host-id",
        metavar="NAME",
        default=None,
        help="stable name for this sliced-hosts supervisor "
        "(default host-<pid>)",
    )
    run_parser.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="heartbeat-silence threshold before a sliced-hosts peer's "
        "lease is considered stale and fenced (default 5.0)",
    )
    run_parser.add_argument(
        "--no-auto-slice",
        action="store_true",
        help="fail instead of re-partitioning when --queue-capacity "
        "requires more slices than --num-slices",
    )
    run_parser.add_argument(
        "--resilience",
        action="store_true",
        help="enable invariant detection + recovery even with no faults",
    )
    run_parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="per-site fault probability (implies --resilience)",
    )
    run_parser.add_argument(
        "--fault-kinds",
        type=_fault_kind_list,
        default=None,
        metavar="KINDS",
        help="comma-separated fault kinds to inject (default: every "
        "kind the chosen engine models)",
    )
    run_parser.add_argument(
        "--fault-seed", type=int, default=0, metavar="S",
        help="seed of the reproducible fault plan (default 0)",
    )
    run_parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        metavar="N",
        help="capture a rollback checkpoint every N rounds",
    )
    run_parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="make the run durable: write a manifest plus periodic "
        "on-disk checkpoints (and, with --engine sliced, a spill "
        "journal) to DIR so a killed run can continue with "
        "'repro resume DIR' (implies --resilience)",
    )
    run_parser.add_argument(
        "--dump-values",
        metavar="FILE",
        default=None,
        help="write the final vertex values to FILE as a .npy array "
        "(raw float64 bits, for bit-identical resume verification)",
    )
    run_parser.add_argument(
        "--dead-lane",
        type=_dead_lane,
        action="append",
        default=None,
        metavar="LANE[:CYCLE]",
        help="kill processor LANE at CYCLE (cycle engine; repeatable)",
    )
    run_parser.add_argument(
        "--verify",
        action="store_true",
        help="check the result against the golden reference",
    )
    run_parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome/Perfetto trace of the run to FILE",
    )
    run_parser.add_argument(
        "--trace-categories",
        metavar="CATS",
        default=None,
        help="comma-separated event categories to record (e.g. "
        "'round,queue,dram,counter'); default records everything",
    )
    run_parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write a JSONL metrics stream (samples + stats) to FILE",
    )
    run_parser.add_argument(
        "--metrics-interval",
        type=int,
        default=1000,
        metavar="N",
        help="gauge sampling interval in engine time units (default 1000)",
    )
    run_parser.add_argument(
        "--progress",
        nargs="?",
        const=1000,
        type=int,
        default=None,
        metavar="N",
        help="print a heartbeat line to stderr every N engine rounds "
        "(default 1000) and attach the live metrics registry",
    )
    run_parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="emit the run summary as JSON (stdout when FILE omitted)",
    )

    compare_parser = subparsers.add_parser(
        "compare", help="cross-system comparison for one workload"
    )
    compare_parser.add_argument("algorithm", choices=sorted(ALGORITHMS))
    compare_parser.add_argument(
        "--dataset", default="LJ", choices=dataset_names()
    )
    compare_parser.add_argument("--scale", type=float, default=0.2)
    compare_parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="emit the comparison summary as JSON (stdout when FILE omitted)",
    )

    res_parser = subparsers.add_parser(
        "resilience",
        help="fault-injection campaign with recovery scoring",
    )
    res_parser.add_argument(
        "--dataset",
        default=None,
        choices=dataset_names(),
        help="campaign graph from the Table IV proxies "
        "(default: a seeded Erdos-Renyi graph)",
    )
    res_parser.add_argument("--scale", type=float, default=0.05)
    res_parser.add_argument(
        "--vertices", type=int, default=200, metavar="V",
        help="generator graph size when no --dataset is given",
    )
    res_parser.add_argument(
        "--edges", type=int, default=1200, metavar="E",
        help="generator edge count when no --dataset is given",
    )
    res_parser.add_argument(
        "--graph-seed", type=int, default=7, metavar="S",
        help="generator seed when no --dataset is given",
    )
    res_parser.add_argument(
        "--algorithms",
        type=_algorithm_list,
        default=DEFAULT_ALGORITHMS,
        metavar="ALGOS",
        help="comma-separated algorithms "
        f"(default {','.join(DEFAULT_ALGORITHMS)})",
    )
    res_parser.add_argument(
        "--kinds",
        type=_fault_kind_list,
        default=FAULT_KINDS,
        metavar="KINDS",
        help=f"comma-separated fault kinds (default {','.join(FAULT_KINDS)})",
    )
    res_parser.add_argument(
        "--engine",
        default="functional",
        # sliced-mp is resilient (leases + journal replay) but refuses
        # event-fault plans, so campaigns stay on the in-process engines
        choices=("functional", "cycle", "sliced"),
        help="engine for layer-agnostic kinds; dram always runs the "
        "cycle model and spill the sliced runtime",
    )
    res_parser.add_argument(
        "--rate", type=float, default=1e-3, metavar="P",
        help="per-site fault probability (default 1e-3)",
    )
    res_parser.add_argument("--seed", type=int, default=0, metavar="S")
    res_parser.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="N"
    )
    res_parser.add_argument(
        "--num-slices", type=int, default=2, metavar="N"
    )
    res_parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="emit the campaign report as JSON (stdout when FILE omitted)",
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="AST invariant checker (determinism, durability, "
        "engine-registry discipline)",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        metavar="PATH",
        help="files or directories to lint (default: the installed "
        "repro package)",
    )
    lint_parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="check only this rule id (repeatable)",
    )
    lint_parser.add_argument(
        "--ignore-rule",
        action="append",
        default=None,
        metavar="ID",
        help="skip this rule id (repeatable)",
    )
    lint_parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any unsuppressed finding remains",
    )
    lint_parser.add_argument(
        "--self-check",
        action="store_true",
        help="verify every rule's paired fixtures still trigger/pass "
        "(ignores PATH arguments)",
    )
    lint_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry (scopes and allowlist rationale)",
    )
    lint_parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="emit the structured finding schema (stdout when FILE "
        "omitted)",
    )
    lint_parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="ratchet mode: findings recorded in FILE are reported as "
        "informational and only new findings fail --strict",
    )
    lint_parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the --baseline file from the current findings "
        "instead of checking against it",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="finding output format; 'github' emits ::error workflow "
        "annotations for new findings",
    )

    resume_parser = subparsers.add_parser(
        "resume",
        help="continue a durable run from its newest on-disk checkpoint",
    )
    resume_parser.add_argument(
        "run_dir",
        metavar="RUN_DIR",
        help="run directory written by 'repro run --checkpoint-dir'",
    )
    resume_parser.add_argument(
        "--dump-values",
        metavar="FILE",
        default=None,
        help="write the final vertex values to FILE as a .npy array "
        "(raw float64 bits, for bit-identical resume verification)",
    )
    resume_parser.add_argument(
        "--no-fallback",
        action="store_true",
        help="fail (status 2) on a corrupt newest checkpoint instead "
        "of falling back to an older verifiable generation",
    )
    resume_parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome/Perfetto trace of the resumed tail to FILE",
    )
    resume_parser.add_argument(
        "--trace-categories",
        metavar="CATS",
        default=None,
        help="comma-separated event categories to record (e.g. "
        "'round,queue,recovery'); default records everything",
    )
    resume_parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write a JSONL metrics stream (samples + stats) to FILE",
    )
    resume_parser.add_argument(
        "--metrics-interval",
        type=int,
        default=1000,
        metavar="N",
        help="gauge sampling interval in engine time units (default 1000)",
    )
    resume_parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="emit the resumed-run summary as JSON (stdout when FILE "
        "omitted)",
    )

    gc_parser = subparsers.add_parser(
        "gc",
        help="apply the checkpoint retention policy to a durable run "
        "directory and compact its spill journal",
    )
    gc_parser.add_argument(
        "run_dir",
        metavar="RUN_DIR",
        help="run directory written by 'repro run --checkpoint-dir'",
    )
    gc_parser.add_argument(
        "--keep",
        type=int,
        default=None,
        metavar="K",
        help="verifiable checkpoint generations to retain (default: "
        "the manifest's checkpoint_keep policy)",
    )
    gc_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be dropped without touching disk",
    )
    gc_parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="emit the gc report as JSON (stdout when FILE omitted)",
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help="throughput suite with schema-versioned artifacts and "
        "regression gating",
    )
    bench_parser.add_argument(
        "--engines",
        type=_engine_list,
        default=("functional", "sliced", "bsp"),
        metavar="NAMES",
        help="comma-separated engines (default functional,sliced,bsp)",
    )
    bench_parser.add_argument(
        "--algorithms",
        type=_algorithm_list,
        default=("pagerank", "bfs"),
        metavar="ALGOS",
        help="comma-separated algorithms (default pagerank,bfs)",
    )
    bench_parser.add_argument(
        "--dataset", default="WG", choices=dataset_names()
    )
    bench_parser.add_argument("--scale", type=float, default=0.05)
    bench_parser.add_argument(
        "--mp-workers",
        type=_workers_sweep,
        default=None,
        metavar="COUNTS",
        help="comma-separated worker counts (e.g. '1,2,4'): expand "
        "every sliced-mp engine cell into one variant per count, all "
        "at a slice count of 2x the largest — the speedup-vs-workers "
        "sweep",
    )
    bench_parser.add_argument(
        "--warmup",
        type=int,
        default=1,
        metavar="N",
        help="throwaway repetitions per cell before timing (default 1)",
    )
    bench_parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="timed repetitions per cell; the median is reported "
        "(default 3)",
    )
    bench_parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="artifact path (default BENCH_<host-fingerprint>.json)",
    )
    bench_parser.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="compare against a baseline artifact; exit 1 when any "
        "cell regresses beyond --tolerance",
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=obs_bench.DEFAULT_TOLERANCE,
        metavar="F",
        help="allowed fractional slowdown before --check fails "
        f"(default {obs_bench.DEFAULT_TOLERANCE:g})",
    )
    bench_parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="emit the artifact payload (plus the --check report) as "
        "JSON (stdout when FILE omitted)",
    )
    return parser


def _command_datasets() -> int:
    rows = [
        [
            spec.name,
            spec.num_vertices,
            spec.num_edges,
            f"{spec.original_vertices:,}",
            f"{spec.original_edges:,}",
            spec.description,
        ]
        for spec in DATASETS.values()
    ]
    print(
        format_table(
            [
                "name",
                "proxy |V|",
                "proxy |E|",
                "original |V|",
                "original |E|",
                "description",
            ],
            rows,
            title="Table IV workload proxies",
        )
    )
    return 0


def _check_rate(rate: float, flag: str) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ReproError(f"{flag} must be in [0, 1], got {rate:g}")


def _check_num_slices(num_slices: int) -> None:
    if num_slices < 1:
        raise ReproError(f"--num-slices must be >= 1, got {num_slices}")


def _resilience_config(
    args: argparse.Namespace,
) -> Optional[ResilienceConfig]:
    """Build a ResilienceConfig from the ``run`` flags (None when off)."""
    _check_rate(args.fault_rate, "--fault-rate")
    enabled = (
        args.resilience
        or args.fault_rate > 0.0
        or bool(args.dead_lane)
        or args.checkpoint_interval is not None
        or args.checkpoint_dir is not None
    )
    if not enabled:
        return None
    if args.engine not in RESILIENT_ENGINES:
        raise ReproError(
            f"resilience flags require --engine "
            f"{', '.join(RESILIENT_ENGINES)}; got {args.engine!r}"
        )
    kinds = args.fault_kinds
    if kinds is None:
        kinds = ("drop", "duplicate", "bitflip")
        if args.engine == "cycle":
            kinds += ("dram",)
        elif args.engine in ("sliced", "sliced-mp"):
            kinds += ("spill",)
    plan = FaultPlan.uniform(
        args.fault_rate,
        seed=args.fault_seed,
        kinds=kinds,
        dead_lanes=dict(args.dead_lane or []),
    )
    run_meta = None
    if args.checkpoint_dir is not None:
        engine_options: Dict[str, Any] = {}
        if args.engine in ("sliced", "sliced-mp"):
            engine_options = {
                "num_slices": args.num_slices,
                "queue_capacity": args.queue_capacity,
                "auto_slice": not args.no_auto_slice,
                "dispatch": args.dispatch or "barrier",
            }
        if args.engine == "sliced-mp":
            engine_options["num_workers"] = _resolved_workers(args)
        run_meta = {
            "workload": {
                "algorithm": args.algorithm,
                "dataset": args.dataset,
                "scale": args.scale,
            },
            "engine_options": engine_options,
        }
    return ResilienceConfig(
        fault_plan=plan,
        checkpoint_interval=args.checkpoint_interval,
        checkpoint_dir=args.checkpoint_dir,
        run_meta=run_meta,
    )


def _resilience_lines(summary: Dict[str, Any]) -> List[str]:
    """Human one-liner for a harness activity summary."""
    detections = sum(summary["detections"].values())
    line = (
        f"resilience: {summary['faults']['total']} faults injected   "
        f"{detections} detections   "
        f"{summary['repair']['epochs']} repair epochs   "
        f"{summary['checkpoints']['rollbacks']} rollbacks"
    )
    degraded = summary.get("degraded_lanes") or []
    if degraded:
        line += f"   degraded lanes: {sorted(degraded)}"
    return [line]


def _result_lines(result: RunResult, info: Dict[str, Any]) -> List[str]:
    """Human one-liners, read back from ``info`` (the ``to_json`` dict)
    so ``resume`` can patch relative round counters to absolute ones
    before printing."""
    engine = info["engine"]
    stats = info["stats"]
    if engine == "functional":
        lines = [
            f"rounds: {info['rounds']}   events processed: "
            f"{stats['events_processed']:,}   coalesced away: "
            f"{stats['coalesce_rate']:.1%}"
        ]
    elif engine == "cycle":
        lines = [
            f"cycles: {stats['cycles']:,} "
            f"({stats['seconds'] * 1e6:.1f} us at "
            f"{result.raw.config.clock_ghz:g} GHz)   rounds: "
            f"{info['rounds']}   off-chip: "
            f"{stats['offchip_bytes'] / 1e6:.2f} MB"
        ]
    elif engine in ("sliced", "sliced-mp"):
        lines = [
            f"passes: {info['passes']}   rounds: "
            f"{info['rounds']}   spill traffic: "
            f"{stats['spill_bytes'] / 1e6:.2f} MB "
            f"({stats['spill_overhead']:.1%} of off-chip)"
        ]
        if engine == "sliced-mp":
            lines.append(
                f"workers: {stats['workers']}   max in-flight: "
                f"{stats.get('max_inflight', 0)}   "
                f"recoveries: {stats['recoveries']}"
            )
    elif engine == "sliced-hosts":
        lines = [
            f"passes: {info['passes']}   rounds: {info['rounds']}   "
            f"spill traffic: {stats['spill_bytes'] / 1e6:.2f} MB",
            f"host {stats['host']}: executed {stats['steps_executed']} "
            f"of {stats['steps']} steps   stale peers fenced: "
            f"{stats['takeovers']}",
        ]
    elif engine == "parallel-sliced":
        lines = [
            f"super-rounds: {info['passes']}   messages: "
            f"{stats['messages']:,}   load balance: "
            f"{stats['load_balance']:.2f}"
        ]
    elif engine == "bsp":
        lines = [
            f"iterations: {info['rounds']}   edges scanned: "
            f"{stats['edges_scanned']:,}"
        ]
    else:  # ligra
        lines = [
            f"iterations: {info['rounds']}   modelled time: "
            f"{stats['seconds'] * 1e3:.3f} ms   pull fraction: "
            f"{stats['pull_fraction']:.0%}"
        ]
    if info.get("resilience"):
        lines.extend(_resilience_lines(info["resilience"]))
    return lines


def _resolved_workers(args: argparse.Namespace) -> int:
    """The effective ``--workers`` value, validated up front.

    workers > slices is a typed exit-2 error (never a silent clamp):
    every worker must own at least one slice or the extra processes
    would idle while still costing spawn + barrier bookkeeping.
    """
    workers = 2 if args.workers is None else args.workers
    if workers < 1:
        raise ReproError(f"--workers must be >= 1, got {workers}")
    if workers > args.num_slices:
        raise ReproError(
            f"--workers ({workers}) exceeds --num-slices "
            f"({args.num_slices}); every worker needs at least one "
            f"slice to own — lower --workers or raise --num-slices"
        )
    return workers


def _engine_options(args: argparse.Namespace) -> Dict[str, Any]:
    """Translate ``run`` flags into the engine's ``build_engine`` config.

    Flags that the chosen engine does not model (``--workers`` on
    ``functional``, ``--dispatch`` on ``sliced-hosts``, ...) are passed
    through anyway when given explicitly, so the rejection comes from
    :func:`repro.core.build_engine`'s unknown-option path — one error
    message for CLI and library callers alike.
    """
    options: Dict[str, Any] = {}
    if args.engine in SLICED_ENGINES:
        _check_num_slices(args.num_slices)
        options["num_slices"] = args.num_slices
    if args.engine in ("sliced", "sliced-mp", "sliced-hosts"):
        options["queue_capacity"] = args.queue_capacity
        options["auto_slice"] = not args.no_auto_slice
    if args.engine == "sliced-mp":
        options["num_workers"] = _resolved_workers(args)
    elif args.workers is not None:
        options["num_workers"] = args.workers
    if args.dispatch is not None:
        options["dispatch"] = args.dispatch
    if args.engine == "sliced-hosts":
        if args.hosts_dir is None:
            raise ReproError(
                "--engine sliced-hosts requires --hosts-dir (the shared "
                "substrate directory all participating hosts point at)"
            )
        options["hosts_dir"] = args.hosts_dir
        options["host_id"] = args.host_id
        options["lease_timeout"] = args.lease_timeout
    return options


def _execute_engine(
    args: argparse.Namespace,
    graph,
    spec,
    timeseries: Optional[TimeSeries],
) -> Tuple[np.ndarray, Dict[str, Any], List[str]]:
    """Run the chosen engine; returns (values, summary dict, human lines).

    Engines are constructed exclusively through the
    :func:`repro.core.build_engine` registry; the summary dict is the
    engine-independent :meth:`repro.core.RunResult.to_json` payload.
    """
    resilience = _resilience_config(args)
    handle = build_engine(
        args.engine,
        (graph, spec),
        _engine_options(args),
        resilience=resilience,
        timeseries=timeseries,
    )
    result = handle.run()
    info = result.to_json()
    lines = _result_lines(result, info)
    return result.values, info, lines


def _write_json(payload: Dict[str, Any], destination: str) -> None:
    """Dump JSON to stdout (``"-"``) or atomically to a file."""
    # default=float coerces numpy scalars that leak into summaries
    text = json.dumps(payload, indent=2, sort_keys=True, default=float)
    if destination == "-":
        print(text)
    else:
        atomic_write_text(destination, text + "\n")


def _dump_values(values: np.ndarray, destination: str) -> None:
    """Atomically write the final vertex values as a ``.npy`` array.

    Raw float64 bits — the crash-resume harness compares these files
    bytewise to prove resumed runs are bit-identical.
    """
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(values, dtype=np.float64))
    atomic_write_bytes(destination, buffer.getvalue())


def _command_run(args: argparse.Namespace) -> int:
    graph, spec = prepare_workload(
        args.dataset, args.algorithm, scale=args.scale
    )
    json_to_stdout = args.json == "-"

    def say(text: str) -> None:
        # JSON-on-stdout replaces the human narration entirely.
        if not json_to_stdout:
            print(text)

    timeseries = (
        TimeSeries(interval=args.metrics_interval)
        if args.metrics is not None and args.engine in ("functional", "cycle")
        else None
    )
    tracer = None
    if args.trace is not None:
        categories = (
            [c.strip() for c in args.trace_categories.split(",") if c.strip()]
            if args.trace_categories
            else None
        )
        tracer = Tracer(categories=categories)
    registry = None
    if args.progress is not None:
        if args.progress < 1:
            raise ReproError(
                f"--progress interval must be >= 1, got {args.progress}"
            )
        registry = obs_metrics.MetricsRegistry()
        registry.progress = obs_metrics.ProgressReporter(
            interval=args.progress
        )

    say(f"workload: {args.algorithm} on {graph}")

    with ExitStack() as stack:
        if args.checkpoint_dir is not None:
            # durable runs stop gracefully: first SIGINT/SIGTERM finishes
            # the round and flushes a final checkpoint before unwinding
            stack.enter_context(InterruptGuard())
        if tracer is not None:
            stack.enter_context(obs_trace.tracing(tracer))
        if registry is not None:
            stack.enter_context(obs_metrics.collecting(registry))
        values, info, lines = _execute_engine(args, graph, spec, timeseries)
    for line in lines:
        say(line)

    finite = values[np.isfinite(values)]
    say(
        f"values: {len(finite):,} finite of {len(values):,}; "
        f"min {finite.min():.4g}  max {finite.max():.4g}"
        if len(finite)
        else "values: none finite"
    )

    payload: Dict[str, Any] = {
        "schema_version": PAYLOAD_SCHEMA_VERSION,
        "workload": {
            "algorithm": args.algorithm,
            "dataset": args.dataset,
            "scale": args.scale,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        },
        "engine": args.engine,
        "result": info,
        "values": {
            "total": int(len(values)),
            "finite": int(len(finite)),
            "min": float(finite.min()) if len(finite) else None,
            "max": float(finite.max()) if len(finite) else None,
        },
    }

    if args.trace is not None:
        count = export.write_chrome_trace(tracer, args.trace)
        payload["trace"] = {"path": args.trace, "events": count}
        say(f"trace: {count:,} events -> {args.trace}")
    if args.metrics is not None:
        # flatten the RunResult payload into one stats record
        stats = {
            "engine": info["engine"],
            "converged": info["converged"],
            "rounds": info["rounds"],
            "passes": info["passes"],
            **info["stats"],
        }
        written = export.write_metrics_jsonl(
            args.metrics, timeseries=timeseries, stats=stats
        )
        payload["metrics"] = {"path": args.metrics, "lines": written}
        say(f"metrics: {written:,} lines -> {args.metrics}")
    if registry is not None:
        payload["metrics_registry"] = registry.snapshot()
    if args.dump_values is not None:
        _dump_values(values, args.dump_values)
        payload["values"]["file"] = args.dump_values
        say(f"values -> {args.dump_values}")

    status = 0
    if args.verify:
        root = int(np.argmax(graph.out_degrees()))
        injection = (
            algorithms.injection_values(graph)
            if args.algorithm == "adsorption"
            else None
        )
        reference = algorithms.reference_for(
            args.algorithm, graph, root=root, injection=injection
        )
        mask = np.isfinite(reference)
        error = (
            float(np.max(np.abs(values[mask] - reference[mask])))
            if mask.any()
            else 0.0
        )
        ok = error < max(spec.comparison_tolerance * 100, 1e-6)
        payload["verification"] = {"max_error": error, "ok": ok}
        say(f"verification: max error {error:.3g} -> "
            f"{'OK' if ok else 'MISMATCH'}")
        if not ok:
            status = 1

    if args.json is not None:
        _write_json(payload, args.json)
    return status


def _command_compare(args: argparse.Namespace) -> int:
    result = run_comparison(
        args.dataset, args.algorithm, scale=args.scale, verify=False
    )
    summary = result.summary()
    if args.json is not None:
        payload = {
            "workload": {
                "algorithm": args.algorithm,
                "dataset": args.dataset,
                "scale": args.scale,
            },
            "summary": summary,
        }
        _write_json(payload, args.json)
        if args.json == "-":
            return 0
    rows = [
        ["GraphPulse+opt vs Ligra", f"{summary['speedup_vs_ligra']:.2f}x"],
        [
            "GraphPulse-base vs Ligra",
            f"{summary['baseline_speedup_vs_ligra']:.2f}x",
        ],
        [
            "GraphPulse vs Graphicionado",
            f"{summary['speedup_vs_graphicionado']:.2f}x",
        ],
        [
            "off-chip traffic vs Graphicionado",
            f"{summary['traffic_vs_graphicionado']:.2f}",
        ],
        ["off-chip data utilization", f"{summary['data_utilization']:.2f}"],
        ["GraphPulse rounds", int(summary["graphpulse_rounds"])],
        ["BSP iterations", int(summary["bsp_iterations"])],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"{args.algorithm} on {args.dataset} "
            f"(scale {args.scale:g})",
        )
    )
    return 0


def _command_resilience(args: argparse.Namespace) -> int:
    _check_rate(args.rate, "--rate")
    _check_num_slices(args.num_slices)
    if args.dataset is not None:
        graph = load_dataset(args.dataset, scale=args.scale)
        graph_name = args.dataset
    else:
        graph = erdos_renyi_graph(
            args.vertices, args.edges, seed=args.graph_seed
        )
        graph_name = f"er({args.vertices},{args.edges})"
    campaign = run_campaign(
        {graph_name: graph},
        algorithms=args.algorithms,
        kinds=args.kinds,
        engine=args.engine,
        rate=args.rate,
        seed=args.seed,
        checkpoint_interval=args.checkpoint_interval,
        num_slices=args.num_slices,
    )
    ok = (
        campaign.convergence_rate == 1.0 and campaign.recovery_rate == 1.0
    )
    if args.json is not None:
        payload = campaign.to_dict()
        payload["ok"] = ok
        _write_json(payload, args.json)
    if args.json != "-":
        print(format_report(campaign))
        print("CAMPAIGN OK" if ok else "CAMPAIGN FAILED")
    return 0 if ok else 1


def _lint_rules(args: argparse.Namespace):
    """Resolve --rule/--ignore-rule to Rule objects (typed failure on
    unknown ids, so CI typos fail loudly instead of linting nothing)."""
    from .analysis.staticcheck import select_rules

    try:
        return select_rules(
            tuple(args.rule or ()), tuple(args.ignore_rule or ())
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from None


def _lint_paths(args: argparse.Namespace) -> List[str]:
    """Lint targets; default is the installed ``repro`` package so the
    verb works from any working directory."""
    if args.paths:
        for path in args.paths:
            if not os.path.exists(path):
                raise ReproError(f"lint path does not exist: {path}")
        return list(args.paths)
    return [os.path.dirname(os.path.abspath(__file__))]


def _github_annotation(finding) -> str:
    """Render a finding as a GitHub Actions ``::error`` workflow command
    (annotates the offending line directly in the PR diff view)."""

    def prop(value: str) -> str:
        # Property values terminate on "," and ":"; data only on "%"
        # and newlines.  Escaping rules come from the workflow-command
        # spec, not from us.
        return (
            value.replace("%", "%25")
            .replace("\r", "%0D")
            .replace("\n", "%0A")
            .replace(":", "%3A")
            .replace(",", "%2C")
        )

    message = (
        finding.message.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )
    return (
        f"::error file={prop(finding.path)},line={finding.line},"
        f"col={finding.col},title={prop('repro-lint ' + finding.rule)}"
        f"::{message}"
    )


def _command_lint(args: argparse.Namespace) -> int:
    from .analysis.staticcheck import lint_paths, run_selfcheck

    rules = _lint_rules(args)
    json_to_stdout = args.json == "-"

    def say(text: str) -> None:
        if not json_to_stdout:
            print(text)

    if args.list_rules:
        rows = [
            [rule.id, rule.severity, rule.description] for rule in rules
        ]
        say(format_table(["id", "severity", "invariant"], rows,
                         title="repro lint rules"))
        for rule in rules:
            for pattern, reason in sorted(rule.allowlist.items()):
                say(f"  {rule.id} allowlist {pattern}: {reason}")
        if args.json is not None:
            _write_json(
                {"rules": [rule.describe() for rule in rules]}, args.json
            )
        return 0

    if args.self_check:
        failures = run_selfcheck(rules)
        for failure in failures:
            say(f"self-check: {failure.format()}")
        say(
            f"self-check: {len(rules)} rules, "
            f"{len(failures)} broken fixture contract(s)"
        )
        if args.json is not None:
            _write_json(
                {
                    "self_check": {
                        "rules": [rule.id for rule in rules],
                        "failures": [
                            {
                                "rule": failure.rule,
                                "fixture": failure.fixture,
                                "message": failure.message,
                            }
                            for failure in failures
                        ],
                        "ok": not failures,
                    }
                },
                args.json,
            )
        return 1 if failures else 0

    if args.update_baseline and not args.baseline:
        raise ReproError("--update-baseline requires --baseline FILE")
    if args.format == "github" and json_to_stdout:
        raise ReproError(
            "--format github owns stdout; write --json to a file instead"
        )

    paths = _lint_paths(args)
    findings = lint_paths(paths, rules)
    unsuppressed = [f for f in findings if not f.suppressed]
    by_rule: Dict[str, int] = {}
    for finding in unsuppressed:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1

    failing = list(unsuppressed)
    baselined: List[object] = []
    baseline_json = None
    if args.baseline:
        from .analysis.staticcheck.baseline import (
            apply_baseline,
            read_baseline,
            write_baseline,
        )

        if args.update_baseline:
            entry_count = write_baseline(unsuppressed, args.baseline)
            baselined, failing = list(unsuppressed), []
            say(
                f"lint: baseline rewritten: {args.baseline} "
                f"({entry_count} entries)"
            )
        else:
            try:
                entries = read_baseline(args.baseline)
            except (OSError, ValueError) as exc:
                raise ReproError(
                    f"cannot read lint baseline: {exc}"
                ) from None
            entry_count = len(entries)
            failing, baselined = apply_baseline(unsuppressed, entries)
        baseline_json = {
            "file": args.baseline,
            "updated": bool(args.update_baseline),
            "entries": entry_count,
            "baselined": len(baselined),
            "new": len(failing),
        }
    baselined_ids = {id(f) for f in baselined}

    if args.format == "github":
        for finding in failing:
            print(_github_annotation(finding))
    else:
        for finding in findings:
            tag = "  [baseline]" if id(finding) in baselined_ids else ""
            say(finding.format() + tag)
            if (
                finding.hint
                and not finding.suppressed
                and id(finding) not in baselined_ids
            ):
                say(f"    hint: {finding.hint}")
    say(
        f"lint: {len(unsuppressed)} finding(s), "
        f"{len(findings) - len(unsuppressed)} suppressed "
        f"({', '.join(rule.id for rule in rules)})"
    )
    if args.baseline and not args.update_baseline:
        say(
            f"lint: baseline {args.baseline}: {len(baselined)} "
            f"baselined, {len(failing)} new"
        )

    if args.json is not None:
        lint_json = {
            "paths": paths,
            "rules": [rule.id for rule in rules],
            "strict": bool(args.strict),
            "findings": [f.to_json() for f in findings],
            "counts": {
                "total": len(findings),
                "unsuppressed": len(unsuppressed),
                "suppressed": len(findings) - len(unsuppressed),
                "by_rule": by_rule,
            },
            "ok": not failing,
        }
        if baseline_json is not None:
            lint_json["baseline"] = baseline_json
        _write_json({"lint": lint_json}, args.json)
    return 1 if args.strict and failing else 0


def _command_resume(args: argparse.Namespace) -> int:
    timeseries = (
        TimeSeries(interval=args.metrics_interval)
        if args.metrics is not None
        else None
    )
    tracer = None
    if args.trace is not None:
        categories = (
            [c.strip() for c in args.trace_categories.split(",") if c.strip()]
            if args.trace_categories
            else None
        )
        tracer = Tracer(categories=categories)
    with ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(obs_trace.tracing(tracer))
        outcome = resume_run(
            args.run_dir,
            timeseries=timeseries,
            fallback=not args.no_fallback,
        )
    result = outcome.result
    restored = outcome.restored
    provenance = outcome.provenance
    workload = outcome.manifest.get("workload") or {}
    json_to_stdout = args.json == "-"

    def say(text: str) -> None:
        if not json_to_stdout:
            print(text)

    origin = (
        f"checkpoint {restored.seq} (after round {restored.round_index})"
        if restored is not None
        else "the beginning (no checkpoint had been flushed yet)"
    )
    say(
        f"resumed {workload.get('algorithm')} on {workload.get('dataset')} "
        f"(scale {workload.get('scale')}, engine {outcome.engine}) "
        f"from {origin}"
    )
    skipped = provenance.get("checkpoints_skipped") or []
    if skipped:
        say(
            f"fallback: skipped {len(skipped)} corrupt checkpoint "
            f"generation(s): "
            + ", ".join(str(s.get("seq")) for s in skipped)
        )

    info = result.to_json()
    # the resumed process only sees its own tail of the run; lift the
    # counters that restart from zero back to absolute round numbers so
    # run and run+resume report the same convergence round
    if outcome.engine == "functional":
        if result.raw.rounds:
            info["rounds"] = result.raw.rounds[-1].round_index + 1
        elif restored is not None:
            info["rounds"] = restored.round_index + 1
    elif outcome.engine in ("sliced", "sliced-mp"):
        if not result.raw.activations and restored is not None:
            info["passes"] = restored.round_index
    for line in _result_lines(result, info):
        say(line)

    values = result.values
    finite = values[np.isfinite(values)]
    say(
        f"values: {len(finite):,} finite of {len(values):,}; "
        f"min {finite.min():.4g}  max {finite.max():.4g}"
        if len(finite)
        else "values: none finite"
    )

    payload: Dict[str, Any] = {
        "schema_version": PAYLOAD_SCHEMA_VERSION,
        "resumed": {
            "run_dir": args.run_dir,
            "checkpoint": restored.seq if restored is not None else None,
            "round_index": (
                restored.round_index if restored is not None else None
            ),
            # recovery provenance: which generation actually restored,
            # what the fallback ladder skipped and what the journal
            # replay kept/discarded (see validate_resume_payload)
            "generation": provenance.get("generation"),
            "fallback": bool(provenance.get("fallback")),
            "from_scratch": bool(provenance.get("from_scratch")),
            "checkpoints_skipped": skipped,
            "journal": provenance.get("journal"),
        },
        "workload": workload,
        "engine": outcome.engine,
        "result": info,
        "values": {
            "total": int(len(values)),
            "finite": int(len(finite)),
            "min": float(finite.min()) if len(finite) else None,
            "max": float(finite.max()) if len(finite) else None,
        },
    }
    if args.trace is not None:
        count = export.write_chrome_trace(tracer, args.trace)
        payload["trace"] = {"path": args.trace, "events": count}
        say(f"trace: {count:,} events -> {args.trace}")
    if args.metrics is not None:
        stats = {
            "engine": info["engine"],
            "converged": info["converged"],
            "rounds": info["rounds"],
            "passes": info["passes"],
            **info["stats"],
        }
        written = export.write_metrics_jsonl(
            args.metrics, timeseries=timeseries, stats=stats
        )
        payload["metrics"] = {"path": args.metrics, "lines": written}
        say(f"metrics: {written:,} lines -> {args.metrics}")
    if args.dump_values is not None:
        _dump_values(values, args.dump_values)
        payload["values"]["file"] = args.dump_values
        say(f"values -> {args.dump_values}")
    if args.json is not None:
        _write_json(payload, args.json)
    return 0


def _command_gc(args: argparse.Namespace) -> int:
    report = gc_run_dir(
        args.run_dir, keep=args.keep, dry_run=args.dry_run
    )
    json_to_stdout = args.json == "-"

    def say(text: str) -> None:
        if not json_to_stdout:
            print(text)

    verb = "would drop" if report.dry_run else "dropped"
    say(
        f"gc {args.run_dir}: retained "
        f"{len(report.retained)} generation(s) "
        f"({', '.join(str(e['seq']) for e in report.retained) or 'none'}), "
        f"{verb} {len(report.dropped)} stale, "
        f"{len(report.corrupt)} corrupt, "
        f"{len(report.orphans)} orphan(s)"
    )
    for entry in report.corrupt:
        say(f"  corrupt checkpoint {entry['seq']}: {entry['error']}")
    journal = report.journal or {}
    if journal.get("skipped"):
        say(f"journal: skipped ({journal['skipped']})")
    elif report.dry_run and "compact_upto" in journal:
        say(f"journal: would compact up to commit {journal['compact_upto']}")
    elif journal:
        say(
            f"journal: compacted up to commit {journal.get('upto')} "
            f"({journal.get('records_dropped', 0)} record(s) dropped, "
            f"{journal.get('bytes_before', 0):,} -> "
            f"{journal.get('bytes_after', 0):,} bytes)"
        )
    if args.json is not None:
        _write_json(
            {"schema_version": PAYLOAD_SCHEMA_VERSION, **report.to_json()},
            args.json,
        )
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    if args.repeats < 1:
        raise ReproError(f"--repeats must be >= 1, got {args.repeats}")
    if args.warmup < 0:
        raise ReproError(f"--warmup must be >= 0, got {args.warmup}")
    cells = obs_bench.default_suite(
        engines=args.engines,
        algorithms=args.algorithms,
        dataset=args.dataset,
        scale=args.scale,
        mp_workers=args.mp_workers or (),
    )
    json_to_stdout = args.json == "-"

    def say(text: str) -> None:
        if not json_to_stdout:
            print(text)

    # per-cell progress goes to stderr so `--json -` stays parseable
    payload = obs_bench.run_suite(
        cells,
        warmup=args.warmup,
        repeats=args.repeats,
        log=lambda line: print(line, file=sys.stderr),
    )
    out = args.out or obs_bench.default_artifact_name()
    obs_bench.write_bench(payload, out)
    say(
        f"bench: {len(payload['cells'])} cells "
        f"(host {payload['host']['fingerprint']}) -> {out}"
    )
    rows = [
        [
            cell["key"],
            f"{cell['events_per_sec']:,.0f} {cell['work_unit']}/s",
            f"{cell['median_seconds'] * 1e3:.1f} ms",
            f"{cell['peak_rss_kb'] / 1024:.0f} MB",
        ]
        for cell in payload["cells"]
    ]
    say(
        format_table(
            ["cell", "throughput", "median", "peak rss"],
            rows,
            title=f"repro bench ({args.dataset} @ {args.scale:g}, "
            f"median of {args.repeats})",
        )
    )

    status = 0
    output: Dict[str, Any] = payload
    if args.check is not None:
        baseline = obs_bench.load_bench(args.check)
        report = obs_bench.check_regression(
            payload, baseline, tolerance=args.tolerance
        )
        output = dict(payload)
        output["check"] = report.to_json()
        for regression in report.regressions:
            say(
                f"REGRESSION {regression['key']}: "
                f"{regression['current_events_per_sec']:,.0f}/s vs "
                f"baseline {regression['baseline_events_per_sec']:,.0f}/s "
                f"(floor {regression['floor_events_per_sec']:,.0f}/s)"
            )
        say(
            f"check vs {args.check}: {report.compared} compared, "
            f"{len(report.unmatched)} unmatched, "
            f"{len(report.regressions)} regression(s) "
            f"(tolerance {report.tolerance:g}) -> "
            f"{'OK' if report.ok else 'FAILED'}"
        )
        if not report.ok:
            status = 1
    if args.json is not None:
        _write_json(output, args.json)
    return status


def _error_payload(exc: ReproError) -> Dict[str, Any]:
    """Structured ``{"error": ...}`` object for a typed failure."""
    error: Dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, GraphValidationError):
        error.update(exc.context)
    elif isinstance(exc, QueueCapacityError):
        error.update(
            num_vertices=exc.num_vertices,
            capacity=exc.capacity,
            required_slices=exc.required_slices,
            suggestion=(
                f"re-run with --engine sliced "
                f"--num-slices {exc.required_slices}"
            ),
        )
    elif isinstance(exc, NonConvergenceError):
        error["diagnostic"] = exc.diagnostic
    elif isinstance(exc, UnrecoverableFaultError):
        error.update(exc.detail)
    elif isinstance(exc, (CheckpointCorruptError, ManifestMismatchError)):
        error.update(exc.context)
    return {"error": error}


def _report_error(exc: ReproError, json_dest: Optional[str]) -> int:
    """Clean nonzero exit for a typed failure: no traceback, status 2."""
    if json_dest is not None:
        _write_json(_error_payload(exc), json_dest)
    if json_dest != "-":
        print(f"error: {exc}", file=sys.stderr)
        if isinstance(exc, QueueCapacityError):
            print(
                f"hint: re-run with --engine sliced "
                f"--num-slices {exc.required_slices}",
                file=sys.stderr,
            )
    return 2


def _report_interrupt(
    exc: Optional[RunInterruptedError], json_dest: Optional[str]
) -> int:
    """Clean exit 130 for an interrupted run (no traceback).

    On a durable run ``exc`` carries the final flushed checkpoint, so
    both the human hint and the ``--json`` partial-result object name
    the exact ``repro resume`` invocation that continues the run.
    """
    detail = dict(exc.detail) if exc is not None else {}
    run_dir = detail.get("run_dir")
    if json_dest is not None:
        interrupted: Dict[str, Any] = {
            "message": str(exc) if exc is not None else "interrupted",
            **detail,
        }
        if run_dir:
            interrupted["resume"] = f"repro resume {run_dir}"
        _write_json({"interrupted": interrupted}, json_dest)
    if json_dest != "-":
        message = str(exc) if exc is not None else "interrupted"
        print(f"interrupted: {message}", file=sys.stderr)
        if run_dir:
            print(
                f"hint: continue with 'repro resume {run_dir}'",
                file=sys.stderr,
            )
    return 130


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        # the storage-fault chaos layer, when requested via
        # REPRO_STORAGE_FAULTS, shims every durable write in this process
        storagefaults.install_from_env()
        if args.command == "datasets":
            return _command_datasets()
        if args.command == "run":
            return _command_run(args)
        if args.command == "compare":
            return _command_compare(args)
        if args.command == "resilience":
            return _command_resilience(args)
        if args.command == "lint":
            return _command_lint(args)
        if args.command == "resume":
            return _command_resume(args)
        if args.command == "gc":
            return _command_gc(args)
        if args.command == "bench":
            return _command_bench(args)
        raise AssertionError(f"unhandled command {args.command!r}")
    except RunInterruptedError as exc:
        return _report_interrupt(exc, getattr(args, "json", None))
    except KeyboardInterrupt:
        return _report_interrupt(None, getattr(args, "json", None))
    except ReproError as exc:
        return _report_error(exc, getattr(args, "json", None))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
