"""Command-line interface for the GraphPulse reproduction.

Three subcommands:

``datasets``
    List the Table IV proxy datasets and their shapes.

``run``
    Run one algorithm on one dataset proxy through a chosen engine
    (functional event model, cycle-level accelerator, BSP, or the Ligra
    baseline) and print convergence and event statistics.

``compare``
    Run the full cross-system comparison (the Figure 10/11/12 pipeline)
    for one workload and print the speedup/traffic summary.

Examples::

    python -m repro datasets
    python -m repro run pagerank --dataset LJ --scale 0.2
    python -m repro run sssp --dataset WG --engine cycle --scale 0.05
    python -m repro compare cc --dataset FB --scale 0.2
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from . import algorithms
from .analysis import ALGORITHMS, prepare_workload, run_comparison
from .analysis.report import format_table
from .baselines import LigraEngine, SynchronousDeltaEngine
from .core import FunctionalGraphPulse, GraphPulseAccelerator
from .graph import DATASETS, dataset_names

__all__ = ["main", "build_parser"]

ENGINES = ("functional", "cycle", "bsp", "ligra")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphPulse (MICRO 2020) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "datasets", help="list the Table IV proxy datasets"
    )

    run_parser = subparsers.add_parser(
        "run", help="run one workload on one engine"
    )
    run_parser.add_argument(
        "algorithm", choices=sorted(ALGORITHMS) + ["bfs-reachability"]
    )
    run_parser.add_argument(
        "--dataset", default="LJ", choices=dataset_names()
    )
    run_parser.add_argument("--scale", type=float, default=0.2)
    run_parser.add_argument(
        "--engine", default="functional", choices=ENGINES
    )
    run_parser.add_argument(
        "--verify",
        action="store_true",
        help="check the result against the golden reference",
    )

    compare_parser = subparsers.add_parser(
        "compare", help="cross-system comparison for one workload"
    )
    compare_parser.add_argument("algorithm", choices=sorted(ALGORITHMS))
    compare_parser.add_argument(
        "--dataset", default="LJ", choices=dataset_names()
    )
    compare_parser.add_argument("--scale", type=float, default=0.2)
    return parser


def _command_datasets() -> int:
    rows = [
        [
            spec.name,
            spec.num_vertices,
            spec.num_edges,
            f"{spec.original_vertices:,}",
            f"{spec.original_edges:,}",
            spec.description,
        ]
        for spec in DATASETS.values()
    ]
    print(
        format_table(
            [
                "name",
                "proxy |V|",
                "proxy |E|",
                "original |V|",
                "original |E|",
                "description",
            ],
            rows,
            title="Table IV workload proxies",
        )
    )
    return 0


def _command_run(args: argparse.Namespace) -> int:
    graph, spec = prepare_workload(
        args.dataset, args.algorithm, scale=args.scale
    )
    print(f"workload: {args.algorithm} on {graph}")

    if args.engine == "functional":
        result = FunctionalGraphPulse(graph, spec).run()
        values = result.values
        print(
            f"rounds: {result.num_rounds}   events processed: "
            f"{result.total_events_processed:,}   coalesced away: "
            f"{result.coalesce_rate():.1%}"
        )
    elif args.engine == "cycle":
        result = GraphPulseAccelerator(graph, spec).run()
        values = result.values
        print(
            f"cycles: {result.total_cycles:,} "
            f"({result.seconds * 1e6:.1f} us at "
            f"{result.config.clock_ghz:g} GHz)   rounds: "
            f"{result.num_rounds}   off-chip: "
            f"{result.offchip_bytes / 1e6:.2f} MB"
        )
    elif args.engine == "bsp":
        result = SynchronousDeltaEngine(graph, spec).run()
        values = result.values
        print(
            f"iterations: {result.num_iterations}   edges scanned: "
            f"{result.total_edges_scanned:,}"
        )
    else:  # ligra
        result = LigraEngine(graph, spec).run()
        values = result.values
        print(
            f"iterations: {result.num_iterations}   modelled time: "
            f"{result.seconds * 1e3:.3f} ms   pull fraction: "
            f"{result.pull_fraction:.0%}"
        )

    finite = values[np.isfinite(values)]
    print(
        f"values: {len(finite):,} finite of {len(values):,}; "
        f"min {finite.min():.4g}  max {finite.max():.4g}"
        if len(finite)
        else "values: none finite"
    )

    if args.verify:
        root = int(np.argmax(graph.out_degrees()))
        injection = (
            algorithms.injection_values(graph)
            if args.algorithm == "adsorption"
            else None
        )
        reference = algorithms.reference_for(
            args.algorithm, graph, root=root, injection=injection
        )
        mask = np.isfinite(reference)
        error = (
            float(np.max(np.abs(values[mask] - reference[mask])))
            if mask.any()
            else 0.0
        )
        ok = error < max(spec.comparison_tolerance * 100, 1e-6)
        print(f"verification: max error {error:.3g} -> "
              f"{'OK' if ok else 'MISMATCH'}")
        if not ok:
            return 1
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    result = run_comparison(
        args.dataset, args.algorithm, scale=args.scale, verify=False
    )
    summary = result.summary()
    rows = [
        ["GraphPulse+opt vs Ligra", f"{summary['speedup_vs_ligra']:.2f}x"],
        [
            "GraphPulse-base vs Ligra",
            f"{summary['baseline_speedup_vs_ligra']:.2f}x",
        ],
        [
            "GraphPulse vs Graphicionado",
            f"{summary['speedup_vs_graphicionado']:.2f}x",
        ],
        [
            "off-chip traffic vs Graphicionado",
            f"{summary['traffic_vs_graphicionado']:.2f}",
        ],
        ["off-chip data utilization", f"{summary['data_utilization']:.2f}"],
        ["GraphPulse rounds", int(summary["graphpulse_rounds"])],
        ["BSP iterations", int(summary["bsp_iterations"])],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"{args.algorithm} on {args.dataset} "
            f"(scale {args.scale:g})",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _command_datasets()
    if args.command == "run":
        return _command_run(args)
    if args.command == "compare":
        return _command_compare(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
