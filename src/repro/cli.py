"""Command-line interface for the GraphPulse reproduction.

Three subcommands:

``datasets``
    List the Table IV proxy datasets and their shapes.

``run``
    Run one algorithm on one dataset proxy through a chosen engine
    (functional event model, cycle-level accelerator, BSP, or the Ligra
    baseline) and print convergence and event statistics.

``compare``
    Run the full cross-system comparison (the Figure 10/11/12 pipeline)
    for one workload and print the speedup/traffic summary.

Observability flags on ``run``: ``--trace FILE`` writes a Chrome/
Perfetto trace of the run, ``--metrics FILE`` a JSONL metrics stream
(gauge samples every ``--metrics-interval`` cycles plus a final stats
record), and ``--json [FILE]`` emits the run summary as machine-readable
JSON (to stdout, replacing the human output, when no FILE is given).

Examples::

    python -m repro datasets
    python -m repro run pagerank --dataset LJ --scale 0.2
    python -m repro run sssp --dataset WG --engine cycle --scale 0.05
    python -m repro run pagerank --dataset WG --engine cycle \
        --trace run.trace.json --metrics run.metrics.jsonl --json
    python -m repro compare cc --dataset FB --scale 0.2 --json
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import ExitStack
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from . import algorithms
from .analysis import ALGORITHMS, prepare_workload, run_comparison
from .analysis.report import format_table
from .baselines import LigraEngine, SynchronousDeltaEngine
from .core import FunctionalGraphPulse, GraphPulseAccelerator
from .graph import DATASETS, dataset_names
from .obs import TimeSeries, Tracer, export
from .obs import trace as obs_trace

__all__ = ["main", "build_parser"]

ENGINES = ("functional", "cycle", "bsp", "ligra")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphPulse (MICRO 2020) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "datasets", help="list the Table IV proxy datasets"
    )

    run_parser = subparsers.add_parser(
        "run", help="run one workload on one engine"
    )
    run_parser.add_argument(
        "algorithm", choices=sorted(ALGORITHMS) + ["bfs-reachability"]
    )
    run_parser.add_argument(
        "--dataset", default="LJ", choices=dataset_names()
    )
    run_parser.add_argument("--scale", type=float, default=0.2)
    run_parser.add_argument(
        "--engine", default="functional", choices=ENGINES
    )
    run_parser.add_argument(
        "--verify",
        action="store_true",
        help="check the result against the golden reference",
    )
    run_parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome/Perfetto trace of the run to FILE",
    )
    run_parser.add_argument(
        "--trace-categories",
        metavar="CATS",
        default=None,
        help="comma-separated event categories to record (e.g. "
        "'round,queue,dram,counter'); default records everything",
    )
    run_parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write a JSONL metrics stream (samples + stats) to FILE",
    )
    run_parser.add_argument(
        "--metrics-interval",
        type=int,
        default=1000,
        metavar="N",
        help="gauge sampling interval in engine time units (default 1000)",
    )
    run_parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="emit the run summary as JSON (stdout when FILE omitted)",
    )

    compare_parser = subparsers.add_parser(
        "compare", help="cross-system comparison for one workload"
    )
    compare_parser.add_argument("algorithm", choices=sorted(ALGORITHMS))
    compare_parser.add_argument(
        "--dataset", default="LJ", choices=dataset_names()
    )
    compare_parser.add_argument("--scale", type=float, default=0.2)
    compare_parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="emit the comparison summary as JSON (stdout when FILE omitted)",
    )
    return parser


def _command_datasets() -> int:
    rows = [
        [
            spec.name,
            spec.num_vertices,
            spec.num_edges,
            f"{spec.original_vertices:,}",
            f"{spec.original_edges:,}",
            spec.description,
        ]
        for spec in DATASETS.values()
    ]
    print(
        format_table(
            [
                "name",
                "proxy |V|",
                "proxy |E|",
                "original |V|",
                "original |E|",
                "description",
            ],
            rows,
            title="Table IV workload proxies",
        )
    )
    return 0


def _execute_engine(
    args: argparse.Namespace,
    graph,
    spec,
    timeseries: Optional[TimeSeries],
) -> Tuple[np.ndarray, Dict[str, Any], List[str]]:
    """Run the chosen engine; returns (values, summary dict, human lines)."""
    if args.engine == "functional":
        result = FunctionalGraphPulse(
            graph, spec, timeseries=timeseries
        ).run()
        info: Dict[str, Any] = {
            "rounds": result.num_rounds,
            "events_processed": result.total_events_processed,
            "events_produced": result.total_events_produced,
            "coalesce_rate": result.coalesce_rate(),
            "converged": result.converged,
        }
        lines = [
            f"rounds: {result.num_rounds}   events processed: "
            f"{result.total_events_processed:,}   coalesced away: "
            f"{result.coalesce_rate():.1%}"
        ]
    elif args.engine == "cycle":
        result = GraphPulseAccelerator(
            graph, spec, timeseries=timeseries
        ).run()
        info = {
            "cycles": result.total_cycles,
            "seconds": result.seconds,
            "rounds": result.num_rounds,
            "events_processed": result.events_processed,
            "events_produced": result.events_produced,
            "offchip_bytes": result.offchip_bytes,
            "data_utilization": result.data_utilization(),
            "converged": result.converged,
        }
        lines = [
            f"cycles: {result.total_cycles:,} "
            f"({result.seconds * 1e6:.1f} us at "
            f"{result.config.clock_ghz:g} GHz)   rounds: "
            f"{result.num_rounds}   off-chip: "
            f"{result.offchip_bytes / 1e6:.2f} MB"
        ]
    elif args.engine == "bsp":
        result = SynchronousDeltaEngine(graph, spec).run()
        info = {
            "iterations": result.num_iterations,
            "edges_scanned": result.total_edges_scanned,
            "converged": result.converged,
        }
        lines = [
            f"iterations: {result.num_iterations}   edges scanned: "
            f"{result.total_edges_scanned:,}"
        ]
    else:  # ligra
        result = LigraEngine(graph, spec).run()
        info = {
            "iterations": result.num_iterations,
            "seconds": result.seconds,
            "pull_fraction": result.pull_fraction,
            "converged": result.converged,
        }
        lines = [
            f"iterations: {result.num_iterations}   modelled time: "
            f"{result.seconds * 1e3:.3f} ms   pull fraction: "
            f"{result.pull_fraction:.0%}"
        ]
    return result.values, info, lines


def _write_json(payload: Dict[str, Any], destination: str) -> None:
    """Dump JSON to stdout (``"-"``) or a file."""
    # default=float coerces numpy scalars that leak into summaries
    text = json.dumps(payload, indent=2, sort_keys=True, default=float)
    if destination == "-":
        print(text)
    else:
        with open(destination, "w") as handle:
            handle.write(text)
            handle.write("\n")


def _command_run(args: argparse.Namespace) -> int:
    graph, spec = prepare_workload(
        args.dataset, args.algorithm, scale=args.scale
    )
    json_to_stdout = args.json == "-"

    def say(text: str) -> None:
        # JSON-on-stdout replaces the human narration entirely.
        if not json_to_stdout:
            print(text)

    timeseries = (
        TimeSeries(interval=args.metrics_interval)
        if args.metrics is not None and args.engine in ("functional", "cycle")
        else None
    )
    tracer = None
    if args.trace is not None:
        categories = (
            [c.strip() for c in args.trace_categories.split(",") if c.strip()]
            if args.trace_categories
            else None
        )
        tracer = Tracer(categories=categories)

    say(f"workload: {args.algorithm} on {graph}")

    with ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(obs_trace.tracing(tracer))
        values, info, lines = _execute_engine(args, graph, spec, timeseries)
    for line in lines:
        say(line)

    finite = values[np.isfinite(values)]
    say(
        f"values: {len(finite):,} finite of {len(values):,}; "
        f"min {finite.min():.4g}  max {finite.max():.4g}"
        if len(finite)
        else "values: none finite"
    )

    payload: Dict[str, Any] = {
        "workload": {
            "algorithm": args.algorithm,
            "dataset": args.dataset,
            "scale": args.scale,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        },
        "engine": args.engine,
        "result": info,
        "values": {
            "total": int(len(values)),
            "finite": int(len(finite)),
            "min": float(finite.min()) if len(finite) else None,
            "max": float(finite.max()) if len(finite) else None,
        },
    }

    if args.trace is not None:
        count = export.write_chrome_trace(tracer, args.trace)
        payload["trace"] = {"path": args.trace, "events": count}
        say(f"trace: {count:,} events -> {args.trace}")
    if args.metrics is not None:
        stats = {"engine": args.engine, **info}
        written = export.write_metrics_jsonl(
            args.metrics, timeseries=timeseries, stats=stats
        )
        payload["metrics"] = {"path": args.metrics, "lines": written}
        say(f"metrics: {written:,} lines -> {args.metrics}")

    status = 0
    if args.verify:
        root = int(np.argmax(graph.out_degrees()))
        injection = (
            algorithms.injection_values(graph)
            if args.algorithm == "adsorption"
            else None
        )
        reference = algorithms.reference_for(
            args.algorithm, graph, root=root, injection=injection
        )
        mask = np.isfinite(reference)
        error = (
            float(np.max(np.abs(values[mask] - reference[mask])))
            if mask.any()
            else 0.0
        )
        ok = error < max(spec.comparison_tolerance * 100, 1e-6)
        payload["verification"] = {"max_error": error, "ok": ok}
        say(f"verification: max error {error:.3g} -> "
            f"{'OK' if ok else 'MISMATCH'}")
        if not ok:
            status = 1

    if args.json is not None:
        _write_json(payload, args.json)
    return status


def _command_compare(args: argparse.Namespace) -> int:
    result = run_comparison(
        args.dataset, args.algorithm, scale=args.scale, verify=False
    )
    summary = result.summary()
    if args.json is not None:
        payload = {
            "workload": {
                "algorithm": args.algorithm,
                "dataset": args.dataset,
                "scale": args.scale,
            },
            "summary": summary,
        }
        _write_json(payload, args.json)
        if args.json == "-":
            return 0
    rows = [
        ["GraphPulse+opt vs Ligra", f"{summary['speedup_vs_ligra']:.2f}x"],
        [
            "GraphPulse-base vs Ligra",
            f"{summary['baseline_speedup_vs_ligra']:.2f}x",
        ],
        [
            "GraphPulse vs Graphicionado",
            f"{summary['speedup_vs_graphicionado']:.2f}x",
        ],
        [
            "off-chip traffic vs Graphicionado",
            f"{summary['traffic_vs_graphicionado']:.2f}",
        ],
        ["off-chip data utilization", f"{summary['data_utilization']:.2f}"],
        ["GraphPulse rounds", int(summary["graphpulse_rounds"])],
        ["BSP iterations", int(summary["bsp_iterations"])],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"{args.algorithm} on {args.dataset} "
            f"(scale {args.scale:g})",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _command_datasets()
    if args.command == "run":
        return _command_run(args)
    if args.command == "compare":
        return _command_compare(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
