"""Memory substrate: DRAM timing, caches, scratchpads (DRAMSim2 stand-in)."""

from .cache import Cache, CacheConfig
from .dram import DRAMBank, DRAMChannel, DRAMConfig, DRAMSystem
from .request import AccessResult, MemoryRequest
from .scratchpad import Scratchpad

__all__ = [
    "MemoryRequest",
    "AccessResult",
    "DRAMConfig",
    "DRAMBank",
    "DRAMChannel",
    "DRAMSystem",
    "Cache",
    "CacheConfig",
    "Scratchpad",
]
