"""Prefetch scratchpad (Section V, Figure 9).

"A small scratchpad memory sits between the processor and the graph
memory to prefetch and store vertex properties for the events waiting in
the input buffer."  The scratchpad is explicitly managed: the prefetcher
fills it with the cache lines covering an upcoming block of events, the
processor then reads vertex properties at SRAM latency, and the block is
dropped once its events complete.
"""

from __future__ import annotations

from typing import Dict, Set

from ..obs import probe
from ..obs import trace as obs_trace
from ..sim.stats import StatSet
from .dram import DRAMSystem
from .request import MemoryRequest

__all__ = ["Scratchpad"]


class Scratchpad:
    """Explicitly-managed line buffer with fixed access latency."""

    def __init__(
        self,
        name: str,
        backing: DRAMSystem,
        *,
        capacity_bytes: int = 1024,
        line_bytes: int = 64,
        access_cycles: int = 1,
    ):
        if capacity_bytes < line_bytes:
            raise ValueError("scratchpad smaller than one line")
        self.name = name
        self.backing = backing
        self.capacity_lines = capacity_bytes // line_bytes
        self.line_bytes = line_bytes
        self.access_cycles = access_cycles
        self._resident: Set[int] = set()
        self.stats = StatSet(name)

    def _line_of(self, address: int) -> int:
        return address // self.line_bytes

    @property
    def resident_lines(self) -> int:
        return len(self._resident)

    def prefetch(self, address: int, at: int, *, kind: str = "vertex") -> int:
        """Fetch the line covering ``address`` into the scratchpad.

        Returns the cycle the line becomes resident.  Already-resident
        lines return immediately (no duplicate traffic).  When full, the
        oldest semantics don't matter — the prefetcher drops lines via
        :meth:`release` as blocks complete — so overflow raises, keeping
        capacity bugs loud.
        """
        line = self._line_of(address)
        if line in self._resident:
            self.stats.add("duplicate_prefetches")
            if obs_trace.ACTIVE is not None:
                probe.cache_access(self.name, at, hit=True, kind=kind)
            return at
        if len(self._resident) >= self.capacity_lines:
            raise RuntimeError(
                f"{self.name}: scratchpad overflow "
                f"({self.capacity_lines} lines); release a block first"
            )
        result = self.backing.access(
            MemoryRequest(
                address=line * self.line_bytes,
                size=self.line_bytes,
                is_write=False,
                kind=kind,
            ),
            at,
        )
        self._resident.add(line)
        self.stats.add("prefetched_lines")
        if obs_trace.ACTIVE is not None:
            probe.cache_access(self.name, at, hit=False, kind=kind)
        return result.done_cycle

    def read(self, address: int, at: int) -> int:
        """Read a resident word; returns completion cycle.

        Reading a non-resident address is a prefetcher bug — raise
        rather than silently modelling a stall.
        """
        if self._line_of(address) not in self._resident:
            raise KeyError(f"{self.name}: address {address:#x} not resident")
        self.stats.add("reads")
        return at + self.access_cycles

    def contains(self, address: int) -> bool:
        return self._line_of(address) in self._resident

    def release(self, address: int) -> None:
        """Drop the line covering ``address`` (block completed)."""
        self._resident.discard(self._line_of(address))

    def release_all(self) -> None:
        self._resident.clear()
