"""Set-associative cache model with LRU replacement.

Used for the edge-reader caching buffer ("We include a small caching
buffer with the edge memory reader to enhance the throughput",
Section V) and for the CPU cache hierarchy in the software-baseline cost
model.  Misses are filled from a backing :class:`DRAMSystem`; dirty
evictions write back.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..obs import probe
from ..obs import trace as obs_trace
from ..sim.stats import StatSet
from .dram import DRAMSystem
from .request import AccessResult, MemoryRequest

__all__ = ["Cache", "CacheConfig"]


class CacheConfig:
    """Geometry of a cache (capacity must be line*assoc aligned)."""

    def __init__(
        self,
        capacity_bytes: int,
        *,
        line_bytes: int = 64,
        associativity: int = 4,
        hit_cycles: int = 2,
    ):
        if capacity_bytes % (line_bytes * associativity):
            raise ValueError("capacity must be a multiple of line*assoc")
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.hit_cycles = hit_cycles
        self.num_sets = capacity_bytes // (line_bytes * associativity)
        if self.num_sets < 1:
            raise ValueError("cache too small for its associativity")


class Cache:
    """LRU set-associative cache in front of a DRAM system."""

    def __init__(self, name: str, config: CacheConfig, backing: DRAMSystem):
        self.name = name
        self.config = config
        self.backing = backing
        # set index -> OrderedDict {tag: dirty}; LRU at the front
        self._sets: Dict[int, "OrderedDict[int, bool]"] = {}
        self.stats = StatSet(name)

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.config.line_bytes
        return line % self.config.num_sets, line // self.config.num_sets

    def access(
        self,
        address: int,
        at: int,
        *,
        is_write: bool = False,
        kind: str = "data",
    ) -> AccessResult:
        """Access one address (within a single line); returns timing."""
        set_index, tag = self._locate(address)
        ways = self._sets.setdefault(set_index, OrderedDict())
        if tag in ways:
            ways.move_to_end(tag)
            if is_write:
                ways[tag] = True
            self.stats.add("hits")
            self.stats.add(f"{kind}_hits")
            if obs_trace.ACTIVE is not None:
                probe.cache_access(self.name, at, hit=True, kind=kind)
            done = at + self.config.hit_cycles
            return AccessResult(start_cycle=at, done_cycle=done, row_hit=True)

        self.stats.add("misses")
        self.stats.add(f"{kind}_misses")
        if obs_trace.ACTIVE is not None:
            probe.cache_access(self.name, at, hit=False, kind=kind)
        line_base = (address // self.config.line_bytes) * self.config.line_bytes
        if len(ways) >= self.config.associativity:
            victim_tag, victim_dirty = ways.popitem(last=False)
            if victim_dirty:
                victim_line = victim_tag * self.config.num_sets + set_index
                self.backing.access(
                    MemoryRequest(
                        address=victim_line * self.config.line_bytes,
                        size=self.config.line_bytes,
                        is_write=True,
                        kind=f"{kind}_writeback",
                    ),
                    at,
                )
                self.stats.add("writebacks")
        fill = self.backing.access(
            MemoryRequest(
                address=line_base,
                size=self.config.line_bytes,
                is_write=False,
                kind=kind,
            ),
            at,
        )
        ways[tag] = is_write
        done = fill.done_cycle + self.config.hit_cycles
        return AccessResult(start_cycle=at, done_cycle=done, row_hit=False)

    def hit_rate(self) -> float:
        total = self.stats.get("hits") + self.stats.get("misses")
        return self.stats.get("hits") / total if total else 0.0

    def flush(self, at: int = 0) -> int:
        """Write back all dirty lines; returns number written."""
        written = 0
        for set_index, ways in self._sets.items():
            for tag, dirty in ways.items():
                if dirty:
                    line = tag * self.config.num_sets + set_index
                    self.backing.access(
                        MemoryRequest(
                            address=line * self.config.line_bytes,
                            size=self.config.line_bytes,
                            is_write=True,
                            kind="flush",
                        ),
                        at,
                    )
                    written += 1
        self._sets.clear()
        return written
