"""DDR3-style DRAM timing model (stand-in for DRAMSim2).

Models the memory subsystem of Table III: 4 DDR3 channels at 17 GB/s
each.  Each channel has a set of banks with open-row (row-buffer) state
and a shared data bus.  An access decomposes into cache-line bursts; a
burst pays row-hit or row-miss latency at its bank, then serializes on
the channel's data bus.  All times are in accelerator clock cycles
(1 GHz, Table III), so 17 GB/s is 17 bytes/cycle.

Address mapping (low bits to high): byte-in-line, channel, column,
bank, row — the standard interleave that spreads consecutive lines over
channels and keeps a sequential stream inside one row per bank, so
streaming accesses enjoy row hits and random accesses mostly miss, the
asymmetry the paper's locality optimizations exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..obs import probe
from ..obs import trace as obs_trace
from ..sim.kernel import BandwidthResource, Resource
from ..sim.stats import StatSet, merge_stats
from .request import AccessResult, MemoryRequest

__all__ = ["DRAMConfig", "DRAMBank", "DRAMChannel", "DRAMSystem"]


@dataclass(frozen=True)
class DRAMConfig:
    """Timing/geometry knobs for the DRAM system (Table III defaults)."""

    num_channels: int = 4
    banks_per_channel: int = 8
    row_bytes: int = 2048
    line_bytes: int = 64
    #: cycles from column command to data for an open row (CAS)
    row_hit_cycles: int = 22
    #: cycles for precharge + activate + CAS on a row-buffer miss
    row_miss_cycles: int = 48
    #: minimum gap between column commands to the same bank
    column_gap_cycles: int = 4
    #: per-channel data-bus bandwidth (17 GB/s at 1 GHz)
    bytes_per_cycle: float = 17.0

    @property
    def lines_per_row(self) -> int:
        return self.row_bytes // self.line_bytes

    @property
    def total_bandwidth(self) -> float:
        return self.num_channels * self.bytes_per_cycle


class DRAMBank:
    """One bank: open-row state plus a command-occupancy resource."""

    def __init__(self, name: str, config: DRAMConfig):
        self.config = config
        self.open_row: int = -1
        self.resource = Resource(name)
        self.stats = self.resource.stats

    def access(self, row: int, at: int) -> Tuple[int, bool]:
        """Issue one burst to ``row``; returns (data_ready_cycle, hit)."""
        hit = row == self.open_row
        if hit:
            occupancy = self.config.column_gap_cycles
            latency = self.config.row_hit_cycles
            self.stats.add("row_hits")
        else:
            occupancy = self.config.row_miss_cycles
            latency = self.config.row_miss_cycles
            self.open_row = row
            self.stats.add("row_misses")
        start = self.resource.acquire(at, occupancy)
        return start + latency, hit


class DRAMChannel:
    """One channel: banks plus the shared data bus."""

    def __init__(self, index: int, config: DRAMConfig):
        self.index = index
        self.config = config
        self.banks: List[DRAMBank] = [
            DRAMBank(f"ch{index}.bank{b}", config)
            for b in range(config.banks_per_channel)
        ]
        self.bus = BandwidthResource(f"ch{index}.bus", config.bytes_per_cycle)
        self.stats = StatSet(f"channel{index}")

    def access_line(self, channel_line: int, at: int, is_write: bool) -> AccessResult:
        """One line-sized burst; ``channel_line`` is the line index local
        to this channel (already stripped of the channel interleave)."""
        cfg = self.config
        column = channel_line % cfg.lines_per_row
        bank_index = (channel_line // cfg.lines_per_row) % cfg.banks_per_channel
        row = channel_line // (cfg.lines_per_row * cfg.banks_per_channel)
        ready, hit = self.banks[bank_index].access(row, at)
        start, done = self.bus.transfer(ready, cfg.line_bytes)
        self.stats.add("bursts")
        self.stats.add("bytes", cfg.line_bytes)
        if is_write:
            self.stats.add("write_bursts")
        else:
            self.stats.add("read_bursts")
        if obs_trace.ACTIVE is not None:
            probe.dram_burst(
                self.index,
                min(at, start),
                done,
                row_hit=hit,
                write=is_write,
                nbytes=cfg.line_bytes,
            )
        return AccessResult(start_cycle=min(at, start), done_cycle=done, row_hit=hit)

    def bank_stats(self) -> StatSet:
        return merge_stats((b.stats for b in self.banks), f"ch{self.index}.banks")


class DRAMSystem:
    """All channels behind a line-interleaved address map."""

    def __init__(self, config: DRAMConfig = DRAMConfig()):
        self.config = config
        self.channels: List[DRAMChannel] = [
            DRAMChannel(c, config) for c in range(config.num_channels)
        ]
        self.stats = StatSet("dram")

    def lines_of(self, request: MemoryRequest) -> range:
        """Global line indices covered by a request."""
        first = request.address // self.config.line_bytes
        last = (request.address + request.size - 1) // self.config.line_bytes
        return range(first, last + 1)

    def access(self, request: MemoryRequest, at: int) -> AccessResult:
        """Perform a (possibly multi-line) access; returns overall timing."""
        start = None
        done = at
        hits = 0
        lines = self.lines_of(request)
        for line in lines:
            channel = self.channels[line % self.config.num_channels]
            result = channel.access_line(
                line // self.config.num_channels, at, request.is_write
            )
            start = result.start_cycle if start is None else min(start, result.start_cycle)
            done = max(done, result.done_cycle)
            hits += int(result.row_hit)
        self.stats.add("accesses")
        self.stats.add(f"{request.kind}_accesses")
        nbytes = len(lines) * self.config.line_bytes
        self.stats.add("bytes", nbytes)
        self.stats.add(f"{request.kind}_bytes", nbytes)
        if request.is_write:
            self.stats.add("write_bytes", nbytes)
        else:
            self.stats.add("read_bytes", nbytes)
        if obs_trace.ACTIVE is not None:
            probe.dram_txn(
                at if start is None else start,
                done,
                kind=request.kind,
                nbytes=nbytes,
                write=request.is_write,
                lines=len(lines),
            )
        return AccessResult(
            start_cycle=at if start is None else start,
            done_cycle=done,
            row_hit=hits == len(lines),
        )

    def access_lines(self, request: MemoryRequest, at: int) -> List[AccessResult]:
        """Like :meth:`access` but returns per-line timing.

        Used by streaming consumers (the edge readers) that pace their
        work on individual line arrivals rather than the whole request.
        """
        results: List[AccessResult] = []
        lines = self.lines_of(request)
        for line in lines:
            channel = self.channels[line % self.config.num_channels]
            results.append(
                channel.access_line(
                    line // self.config.num_channels, at, request.is_write
                )
            )
        self.stats.add("accesses")
        self.stats.add(f"{request.kind}_accesses")
        nbytes = len(lines) * self.config.line_bytes
        self.stats.add("bytes", nbytes)
        self.stats.add(f"{request.kind}_bytes", nbytes)
        if request.is_write:
            self.stats.add("write_bytes", nbytes)
        else:
            self.stats.add("read_bytes", nbytes)
        if obs_trace.ACTIVE is not None and results:
            probe.dram_txn(
                min(r.start_cycle for r in results),
                max(r.done_cycle for r in results),
                kind=request.kind,
                nbytes=nbytes,
                write=request.is_write,
                lines=len(results),
            )
        return results

    def row_hit_rate(self) -> float:
        """Row-buffer hit fraction across all banks."""
        merged = merge_stats(
            (bank.stats for ch in self.channels for bank in ch.banks), "banks"
        )
        total = merged.get("row_hits") + merged.get("row_misses")
        return merged.get("row_hits") / total if total else 0.0

    def busy_horizon(self) -> int:
        """Cycle when the last scheduled burst completes."""
        return max((ch.bus.next_free for ch in self.channels), default=0)

    def bandwidth_utilization(self, horizon: int) -> float:
        """Aggregate data-bus utilization over ``horizon`` cycles."""
        if horizon <= 0:
            return 0.0
        busy = sum(ch.bus.stats.get("busy_cycles") for ch in self.channels)
        return min(busy / (horizon * self.config.num_channels), 1.0)

    def total_bytes(self) -> float:
        return self.stats.get("bytes")
