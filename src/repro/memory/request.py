"""Memory request descriptor shared by the DRAM model and caches."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryRequest", "AccessResult"]


@dataclass(frozen=True)
class MemoryRequest:
    """A single off-chip access of ``size`` bytes at ``address``."""

    address: int
    size: int
    is_write: bool = False
    #: free-form tag recorded into stats (e.g. "vertex", "edge", "spill")
    kind: str = "data"

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.size <= 0:
            raise ValueError("size must be positive")


@dataclass(frozen=True)
class AccessResult:
    """Timing outcome of a memory access."""

    start_cycle: int
    done_cycle: int
    row_hit: bool = False

    @property
    def latency(self) -> int:
        return self.done_cycle - self.start_cycle
