"""Crash-safe file writes shared across the reproduction.

Every artifact the toolkit persists — graph bundles, durable
checkpoints, run manifests, benchmark results, JSON summaries — goes
through the same discipline: write the full content to a temporary file
in the *same directory* as the destination, fsync it, then publish with
``os.replace``.  On POSIX the rename is atomic, so a reader (or a
process that crashed mid-save and restarted) only ever observes the old
complete file or the new complete file, never a truncated hybrid.

The temp file lives next to the destination (not in ``/tmp``) because
``os.replace`` must not cross filesystem boundaries.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from typing import IO, Iterator, Optional, Union

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_open",
    "exclusive_create_bytes",
    "read_bytes",
    "io_shim",
    "set_io_shim",
]

PathLike = Union[str, os.PathLike]

#: Installed storage-fault shim (``repro.resilience.storagefaults``) or
#: ``None``.  The fault-free fast path is a single ``is None`` branch;
#: the shim is consulted only at publish/create time, never per byte.
IO_SHIM: Optional[object] = None


def io_shim() -> Optional[object]:
    """The currently installed IO shim, or ``None`` (the normal case)."""
    return IO_SHIM


def set_io_shim(shim: Optional[object]) -> Optional[object]:
    """Install ``shim`` as the global IO fault hook; returns the previous
    one so callers can restore it.  Pass ``None`` to uninstall.

    The shim protocol (all methods optional, consulted when present):

    ``on_publish(tmp_path, final_path)``
        Called by :func:`atomic_open` after the temp file is fsynced and
        closed, immediately before ``os.replace``.  May mutate the temp
        file in place (torn write / bit rot) or raise ``OSError``
        (transient ``EIO``/``ENOSPC`` — the temp file is then discarded
        and the destination stays untouched, so a bounded retry is safe).

    ``on_create(path)``
        Called by :func:`exclusive_create_bytes` before the exclusive
        open; may raise ``OSError`` for transient create failures.

    ``on_read(path, data) -> bytes``
        Called by :func:`read_bytes` after the file content is read; may
        return damaged bytes (read-side bit rot: the disk image is
        intact but the bytes delivered to the consumer are not — a bad
        controller, cable or cache line) or raise ``OSError`` for
        transient read failures.
    """
    global IO_SHIM
    previous = IO_SHIM
    IO_SHIM = shim
    return previous


@contextlib.contextmanager
def atomic_open(path: PathLike, mode: str = "w") -> Iterator[IO]:
    """Open a temp file that atomically replaces ``path`` on success.

    Yields a writable handle (text or binary per ``mode``).  On a clean
    exit the data is flushed, fsynced and renamed over ``path``; on an
    exception the temp file is removed and ``path`` is untouched.
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_open supports 'w' or 'wb', got {mode!r}")
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix="." + os.path.basename(path) + ".", suffix=".tmp"
    )
    handle = os.fdopen(fd, mode)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        if IO_SHIM is not None:
            hook = getattr(IO_SHIM, "on_publish", None)
            if hook is not None:
                hook(tmp_path, path)
        os.replace(tmp_path, path)
    except BaseException:
        handle.close()
        with contextlib.suppress(OSError):
            os.unlink(tmp_path)
        raise


def exclusive_create_bytes(path: PathLike, data: bytes) -> None:
    """Create ``path`` with ``data`` iff it does not already exist.

    ``O_CREAT | O_EXCL`` makes creation an atomic test-and-set on POSIX:
    exactly one of several racing writers wins, the rest get
    :class:`FileExistsError`.  This is the primitive behind per-slice
    lease files — ownership is whoever's create succeeded.  The data and
    the containing directory are fsynced so the claim survives a crash.
    """
    path = os.fspath(path)
    if IO_SHIM is not None:
        hook = getattr(IO_SHIM, "on_create", None)
        if hook is not None:
            hook(path)
    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    directory = os.path.dirname(path) or "."
    with contextlib.suppress(OSError):
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


def read_bytes(path: PathLike) -> bytes:
    """Read ``path`` fully, consulting the IO shim's read hook.

    The one sanctioned read path for durable artifacts (checkpoints,
    manifests, journal files): routing loads through here lets the
    storage-fault layer model *read-side* corruption — bytes damaged
    between the platter and the consumer — against any backend, which a
    write-time-only shim can never produce.
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        data = handle.read()
    if IO_SHIM is not None:
        hook = getattr(IO_SHIM, "on_read", None)
        if hook is not None:
            data = hook(path, data)
    return data


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Atomically publish ``data`` as the contents of ``path``."""
    with atomic_open(path, "wb") as handle:
        handle.write(data)


def atomic_write_text(path: PathLike, text: str, encoding: str = "utf-8") -> None:
    """Atomically publish ``text`` as the contents of ``path``."""
    atomic_write_bytes(path, text.encode(encoding))
