"""Power, area and energy model (paper Section VI-C, Table V).

The paper synthesizes the RTL (Chisel, 28 nm) and models the on-chip
memories with CACTI7 (22 nm ITRS-HP SRAM).  We cannot synthesize here,
so the per-component static power, per-operation dynamic energy and area
constants below are *derived from Table V itself* plus the activity the
paper reports (the queue's 8.8 W total at the measured access rate).
The model then regenerates the table from the activity counters of an
actual simulated run, and supports the Section VI-B energy-efficiency
comparison (GraphPulse is reported 280x more energy-efficient than the
software framework).

Components (Table V):

==============  ===  ============  =============
component        #   power (mW)    area (mm^2)
==============  ===  ============  =============
Queue            64  116 + 22.2     190   (total)
Scratchpad        8  0.35 + 1.1     0.21  (total)
Network           1  51.3 + 3.4     3.10
Processing        8  - / 1.30       0.44
==============  ===  ============  =============
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = [
    "ComponentPower",
    "PowerModel",
    "PowerReport",
    "energy_efficiency_ratio",
    "CPU_PACKAGE_WATTS",
]

#: TDP-class package power of the 12-core Xeon platform (Table III) used
#: for the software-framework energy comparison.
CPU_PACKAGE_WATTS = 130.0


@dataclass(frozen=True)
class ComponentPower:
    """Static power, per-operation dynamic energy and area of one unit."""

    name: str
    count: int
    static_mw_per_unit: float
    #: dynamic energy per operation (pJ); dynamic power follows activity
    dynamic_pj_per_op: float
    area_mm2_total: float


#: Calibration: Table V reports the 64-bin queue at 116 mW static and
#: 22.2 mW dynamic per bin under PageRank's measured access activity
#: (~10^9 coalescer ops/s per bin at 1 GHz would be 22.2 pJ/op; the
#: measured rate is ~1/3 of peak, giving ~65 pJ/op including the RAM
#: access).  The other components follow the same procedure.
DEFAULT_COMPONENTS: List[ComponentPower] = [
    ComponentPower("queue", 64, 116.0, 65.0, 190.0),
    ComponentPower("scratchpad", 8, 0.35, 3.5, 0.21),
    ComponentPower("network", 1, 51.3, 10.0, 3.10),
    ComponentPower("processing", 8, 0.12, 4.0, 0.44),
]


@dataclass
class PowerReport:
    """Regenerated Table V plus run-level energy."""

    rows: Dict[str, Dict[str, float]]
    total_static_mw: float
    total_dynamic_mw: float
    total_area_mm2: float
    runtime_seconds: float

    @property
    def total_power_watts(self) -> float:
        return (self.total_static_mw + self.total_dynamic_mw) / 1e3

    @property
    def energy_joules(self) -> float:
        return self.total_power_watts * self.runtime_seconds


class PowerModel:
    """Converts component activity counts into the Table V report."""

    def __init__(self, components: List[ComponentPower] = None):
        self.components = {
            c.name: c for c in (components or DEFAULT_COMPONENTS)
        }

    def report(
        self,
        *,
        runtime_seconds: float,
        queue_ops: float,
        scratchpad_ops: float,
        network_ops: float,
        processing_ops: float,
    ) -> PowerReport:
        """Build the power/area table for a run.

        ``*_ops`` are total operation counts over the run; dynamic power
        is ``ops * pJ/op / runtime``.
        """
        if runtime_seconds <= 0:
            raise ValueError("runtime_seconds must be positive")
        activity = {
            "queue": queue_ops,
            "scratchpad": scratchpad_ops,
            "network": network_ops,
            "processing": processing_ops,
        }
        rows: Dict[str, Dict[str, float]] = {}
        total_static = 0.0
        total_dynamic = 0.0
        total_area = 0.0
        for name, component in self.components.items():
            static_mw = component.static_mw_per_unit * component.count
            ops = activity.get(name, 0.0)
            dynamic_mw = ops * component.dynamic_pj_per_op * 1e-12 / (
                runtime_seconds
            ) * 1e3
            rows[name] = {
                "count": component.count,
                "static_mw": static_mw,
                "dynamic_mw": dynamic_mw,
                "total_mw": static_mw + dynamic_mw,
                "area_mm2": component.area_mm2_total,
            }
            total_static += static_mw
            total_dynamic += dynamic_mw
            total_area += component.area_mm2_total
        return PowerReport(
            rows=rows,
            total_static_mw=total_static,
            total_dynamic_mw=total_dynamic,
            total_area_mm2=total_area,
            runtime_seconds=runtime_seconds,
        )


def energy_efficiency_ratio(
    accelerator_report: PowerReport,
    *,
    software_seconds: float,
    software_watts: float = CPU_PACKAGE_WATTS,
) -> float:
    """Software energy over accelerator energy (paper: ~280x).

    Both sides use package power x runtime; DRAM energy is excluded on
    both sides as in the paper ("we did not include DRAM power").
    """
    accel_energy = accelerator_report.energy_joules
    software_energy = software_watts * software_seconds
    return software_energy / accel_energy if accel_energy else float("inf")
