"""Power/area/energy model (Table V, Section VI-C)."""

from .energy import (
    CPU_PACKAGE_WATTS,
    DEFAULT_COMPONENTS,
    ComponentPower,
    PowerModel,
    PowerReport,
    energy_efficiency_ratio,
)

__all__ = [
    "ComponentPower",
    "PowerModel",
    "PowerReport",
    "energy_efficiency_ratio",
    "DEFAULT_COMPONENTS",
    "CPU_PACKAGE_WATTS",
]
