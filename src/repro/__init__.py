"""GraphPulse reproduction: event-driven asynchronous graph processing.

Reproduction of *GraphPulse: An Event-Driven Hardware Accelerator for
Asynchronous Graph Processing* (Rahman, Abu-Ghazaleh, Gupta -- MICRO
2020), built entirely in Python: the accelerator (functional and
cycle-level models), its memory/network substrates, the software and
accelerator baselines it is compared against, and the benchmark harness
regenerating every table and figure of the paper's evaluation.

Quickstart::

    from repro import graph, algorithms
    from repro.core import FunctionalGraphPulse

    g = graph.rmat_graph(1024, 8192, seed=1)
    spec = algorithms.get_algorithm("pagerank", g)
    result = FunctionalGraphPulse(g, spec).run()
    print(result.values[:5], result.num_rounds)
"""

from . import (
    algorithms,
    analysis,
    baselines,
    core,
    graph,
    memory,
    network,
    obs,
    power,
    sim,
)

__version__ = "1.1.0"

__all__ = [
    "algorithms",
    "analysis",
    "baselines",
    "core",
    "graph",
    "memory",
    "network",
    "obs",
    "power",
    "sim",
    "__version__",
]
