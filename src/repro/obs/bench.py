"""End-to-end throughput benchmarking (the ``repro bench`` verb).

The ROADMAP's north star — "as fast as the hardware allows" — needs a
measurement before any optimisation PR can prove a speedup or a CI job
can catch a regression.  This module runs a declarative suite of
*cells* (engine × algorithm × dataset-proxy, each constructed through
:func:`repro.core.build_engine`), measures wall-clock events/sec,
rounds/sec and peak RSS per cell with warmup + repeat-median, and
serializes the result as a schema-versioned ``BENCH_<fingerprint>.json``
artifact through :mod:`repro.ioutil`'s atomic writes.

This is the **one** module in the reproduction allowed to read the wall
clock: DET-001 scopes the whole ``obs/`` layer and allowlists exactly
this file (see :mod:`repro.analysis.staticcheck.rules` for the
rationale).  Nothing measured here ever feeds back into engine state —
the timed runs are ordinary deterministic runs observed from outside.

Methodology (documented for readers in EXPERIMENTS.md):

- each cell runs ``warmup`` throwaway repetitions (JIT-free Python
  still benefits: allocator warmup, page cache, branch predictors),
  then ``repeats`` timed ones;
- the reported throughput is the **median** repetition, which is robust
  to one-off scheduler hiccups that poison means;
- regression checks compare median events/sec against a baseline cell
  with a multiplicative ``tolerance`` (default 0.25: a cell fails when
  it runs more than 25% slower than its baseline), so routine host
  noise passes while a real slowdown trips;
- artifacts embed a host fingerprint because absolute throughput is
  host-specific — comparing artifacts across fingerprints answers
  "what changed", not "which machine is faster".
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import resource
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..ioutil import atomic_write_text

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchCell",
    "default_suite",
    "host_fingerprint",
    "run_cell",
    "run_suite",
    "work_units",
    "write_bench",
    "load_bench",
    "validate_bench",
    "check_regression",
    "default_artifact_name",
]

#: bump on any breaking change to the artifact layout
BENCH_SCHEMA_VERSION = 1

#: default regression tolerance: a cell fails ``--check`` when its
#: median events/sec drops more than this fraction below the baseline
DEFAULT_TOLERANCE = 0.25

#: per-engine option defaults the suite applies so multi-slice/worker
#: engines actually exercise their distinctive machinery
_ENGINE_OPTIONS: Dict[str, Dict[str, Any]] = {
    "sliced": {"num_slices": 2},
    "sliced-mp": {"num_slices": 2, "num_workers": 2},
    "parallel-sliced": {"num_slices": 2},
}


@dataclass(frozen=True)
class BenchCell:
    """One suite cell: an engine running one workload.

    ``variant`` distinguishes cells that differ only in engine options
    (e.g. a worker sweep ``w1``/``w2``/``w4``); it suffixes the pairing
    key so each variant regresses against its own baseline.  ``options``
    is merged over the per-engine suite defaults at run time.
    """

    engine: str
    algorithm: str
    dataset: str
    scale: float
    variant: str = ""
    options: Optional[Dict[str, Any]] = None

    @property
    def key(self) -> str:
        """Stable identity used to pair cells across artifacts."""
        key = (
            f"{self.engine}/{self.algorithm}/{self.dataset}@{self.scale:g}"
        )
        if self.variant:
            key += f"+{self.variant}"
        return key


def default_suite(
    engines: Tuple[str, ...] = ("functional", "sliced", "bsp"),
    algorithms: Tuple[str, ...] = ("pagerank", "bfs"),
    dataset: str = "WG",
    scale: float = 0.05,
    mp_workers: Tuple[int, ...] = (),
) -> List[BenchCell]:
    """The engine × algorithm cross product at one dataset proxy.

    ``mp_workers`` expands every ``sliced-mp`` entry into one cell per
    worker count (variant ``wN``).  The sweep pins one slice count —
    twice the largest worker count, so even the widest variant has
    work to multiplex — and varies *only* ``num_workers``, which is
    what makes the resulting events/sec curve a speedup-vs-workers
    measurement (the EXPERIMENTS.md recipe).
    """
    cells: List[BenchCell] = []
    for e in engines:
        for a in algorithms:
            if e == "sliced-mp" and mp_workers:
                num_slices = 2 * max(mp_workers)
                cells.extend(
                    BenchCell(
                        engine=e,
                        algorithm=a,
                        dataset=dataset,
                        scale=scale,
                        variant=f"w{n}",
                        options={
                            "num_slices": num_slices,
                            "num_workers": n,
                        },
                    )
                    for n in mp_workers
                )
            else:
                cells.append(
                    BenchCell(
                        engine=e, algorithm=a, dataset=dataset, scale=scale
                    )
                )
    return cells


def host_fingerprint() -> str:
    """Eight hex chars identifying the measuring host class.

    Hashes stable platform facts (OS, architecture, Python major.minor,
    CPU count) — enough to tell two artifact populations apart without
    leaking hostnames into committed files.
    """
    version = ".".join(platform.python_version_tuple()[:2])
    facts = "|".join(
        (
            platform.system(),
            platform.machine(),
            f"py{version}",
            f"cpus{os.cpu_count() or 0}",
        )
    )
    return hashlib.sha256(facts.encode()).hexdigest()[:8]


def default_artifact_name() -> str:
    return f"BENCH_{host_fingerprint()}.json"


def work_units(info: Dict[str, Any]) -> int:
    """The throughput numerator for one run summary.

    Engines count work differently; this resolves one comparable unit
    per engine, in preference order: processed events (functional,
    cycle, sliced), scanned edges (BSP), exchanged messages
    (parallel-sliced), then plain iterations (Ligra) as the last
    resort.  Bench cells of *different engines* are therefore only
    comparable within the same unit — the artifact records which unit
    each cell used.
    """
    stats = info.get("stats") or {}
    for key in ("events_processed", "edges_scanned", "messages"):
        value = stats.get(key)
        if value:
            return int(value)
    rounds = info.get("rounds") or info.get("passes") or 0
    return int(rounds)


def _work_unit_name(info: Dict[str, Any]) -> str:
    stats = info.get("stats") or {}
    for key in ("events_processed", "edges_scanned", "messages"):
        if stats.get(key):
            return key
    return "rounds"


def _peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes.

    ``ru_maxrss`` is KB on Linux and bytes on macOS; normalize to KB.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return int(peak)


def _timed_run(cell: BenchCell, workload, options) -> Tuple[float, Dict]:
    """One timed repetition: build, run, return (seconds, summary)."""
    from ..core import build_engine  # local: keep obs import-light

    handle = build_engine(cell.engine, workload, dict(options))
    start = time.perf_counter()
    result = handle.run()
    elapsed = time.perf_counter() - start
    return elapsed, result.to_json()


def run_cell(
    cell: BenchCell,
    *,
    warmup: int = 1,
    repeats: int = 3,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Measure one cell; returns its artifact record.

    The workload is prepared once (graph construction is setup, not
    the thing under test), then the engine is rebuilt fresh for every
    repetition so no run sees a warm predecessor's state.
    """
    from ..analysis import prepare_workload  # local: keep obs import-light

    if repeats < 1:
        raise ReproError(f"bench repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ReproError(f"bench warmup must be >= 0, got {warmup}")
    graph, spec = prepare_workload(
        cell.dataset, cell.algorithm, scale=cell.scale
    )
    workload = (graph, spec)
    options = dict(_ENGINE_OPTIONS.get(cell.engine, {}))
    if cell.options:
        options.update(cell.options)
    for _ in range(warmup):
        _timed_run(cell, workload, options)
    seconds: List[float] = []
    info: Dict[str, Any] = {}
    for _ in range(repeats):
        elapsed, info = _timed_run(cell, workload, options)
        seconds.append(elapsed)
    median = sorted(seconds)[len(seconds) // 2]
    units = work_units(info)
    rounds = info.get("rounds") or info.get("passes") or 0
    record = {
        "engine": cell.engine,
        "algorithm": cell.algorithm,
        "dataset": cell.dataset,
        "scale": cell.scale,
        # variant/options stay out of _REQUIRED_CELL_KEYS: artifacts
        # written before the worker-sweep support remain valid baselines
        "variant": cell.variant,
        "options": options,
        "key": cell.key,
        "warmup": warmup,
        "repeats": repeats,
        "seconds": seconds,
        "median_seconds": median,
        "work_units": units,
        "work_unit": _work_unit_name(info),
        "events_per_sec": units / median if median > 0 else 0.0,
        "rounds": int(rounds),
        "rounds_per_sec": rounds / median if median > 0 else 0.0,
        "converged": bool(info.get("converged")),
        "peak_rss_kb": _peak_rss_kb(),
    }
    if log is not None:
        log(
            f"bench {cell.key}: {record['events_per_sec']:,.0f} "
            f"{record['work_unit']}/s (median of {repeats})"
        )
    return record


def run_suite(
    cells: List[BenchCell],
    *,
    warmup: int = 1,
    repeats: int = 3,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run every cell and assemble the schema-versioned artifact."""
    if not cells:
        raise ReproError("bench suite is empty: no engine/algorithm cells")
    records = [
        run_cell(cell, warmup=warmup, repeats=repeats, log=log)
        for cell in cells
    ]
    version = ".".join(platform.python_version_tuple()[:2])
    return {
        "format_version": BENCH_SCHEMA_VERSION,
        "host": {
            "fingerprint": host_fingerprint(),
            "system": platform.system(),
            "machine": platform.machine(),
            "python": version,
            "cpus": os.cpu_count() or 0,
        },
        "suite": {"warmup": warmup, "repeats": repeats},
        "cells": records,
    }


# ----------------------------------------------------------------------
# Artifact I/O
# ----------------------------------------------------------------------

_REQUIRED_CELL_KEYS = (
    "engine",
    "algorithm",
    "dataset",
    "scale",
    "key",
    "seconds",
    "median_seconds",
    "work_units",
    "work_unit",
    "events_per_sec",
    "rounds",
    "rounds_per_sec",
    "converged",
    "peak_rss_kb",
)


def validate_bench(payload: Dict[str, Any]) -> None:
    """Assert ``payload`` matches the BENCH artifact schema.

    Raises ``ValueError`` naming the first violation; used by the tests
    and the CI bench job so a drifting writer fails loudly.
    """
    if not isinstance(payload, dict):
        raise ValueError("bench payload must be an object")
    version = payload.get("format_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"bench payload format_version {version!r} is not "
            f"{BENCH_SCHEMA_VERSION}"
        )
    host = payload.get("host")
    if not isinstance(host, dict) or not host.get("fingerprint"):
        raise ValueError("bench payload missing host.fingerprint")
    cells = payload.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ValueError("bench payload has no cells")
    for index, cell in enumerate(cells):
        missing = [k for k in _REQUIRED_CELL_KEYS if k not in cell]
        if missing:
            raise ValueError(
                f"bench cell {index} missing keys: {', '.join(missing)}"
            )
        if not isinstance(cell["events_per_sec"], (int, float)):
            raise ValueError(
                f"bench cell {cell.get('key', index)!r} events_per_sec "
                f"must be numeric"
            )


def write_bench(payload: Dict[str, Any], path: str) -> str:
    """Atomically persist an artifact; returns the path written."""
    validate_bench(payload)
    text = json.dumps(payload, indent=2, sort_keys=True)
    atomic_write_text(path, text + "\n")
    return path


def load_bench(path: str) -> Dict[str, Any]:
    """Read and validate an artifact (typed failure on a bad file)."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read bench baseline {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ReproError(
            f"bench baseline {path} is not valid JSON: {exc}"
        ) from None
    try:
        validate_bench(payload)
    except ValueError as exc:
        raise ReproError(f"bench baseline {path}: {exc}") from None
    return payload


# ----------------------------------------------------------------------
# Regression gating
# ----------------------------------------------------------------------


@dataclass
class RegressionReport:
    """Outcome of comparing a current artifact against a baseline."""

    tolerance: float
    compared: int = 0
    #: cells present in current but absent from the baseline (informational)
    unmatched: List[str] = field(default_factory=list)
    regressions: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_json(self) -> Dict[str, Any]:
        return {
            "tolerance": self.tolerance,
            "compared": self.compared,
            "unmatched": list(self.unmatched),
            "regressions": list(self.regressions),
            "ok": self.ok,
        }


def check_regression(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> RegressionReport:
    """Compare two artifacts cell-by-cell on median events/sec.

    A cell regresses when ``current < baseline * (1 - tolerance)``.
    Cells are paired on :attr:`BenchCell.key`; current cells without a
    baseline counterpart are recorded as ``unmatched`` (new cells must
    not fail the gate — they have no history to regress against).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ReproError(
            f"bench tolerance must be in [0, 1), got {tolerance:g}"
        )
    report = RegressionReport(tolerance=tolerance)
    reference = {cell["key"]: cell for cell in baseline["cells"]}
    for cell in current["cells"]:
        base = reference.get(cell["key"])
        if base is None:
            report.unmatched.append(cell["key"])
            continue
        report.compared += 1
        floor = base["events_per_sec"] * (1.0 - tolerance)
        if cell["events_per_sec"] < floor:
            report.regressions.append(
                {
                    "key": cell["key"],
                    "current_events_per_sec": cell["events_per_sec"],
                    "baseline_events_per_sec": base["events_per_sec"],
                    "floor_events_per_sec": floor,
                    "ratio": (
                        cell["events_per_sec"] / base["events_per_sec"]
                        if base["events_per_sec"]
                        else 0.0
                    ),
                }
            )
    return report
