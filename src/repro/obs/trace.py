"""Structured tracing core (the write side of the telemetry layer).

The paper's evaluation is built from an *instrumented* SST testbed:
Figures 4-14 are queue-occupancy curves, per-stage event breakdowns and
off-chip traffic counters sampled while the simulation runs.  This
module provides the equivalent for the reproduction: a :class:`Tracer`
records typed trace events (spans, instants, counters) with explicit
cycle timestamps, and :mod:`repro.obs.export` serializes them to the
Chrome ``chrome://tracing`` / Perfetto JSON format and to JSONL metric
streams.

Design constraints:

- **Disabled tracing must be free.**  Instrumented hot paths guard every
  emission with ``if trace.ACTIVE is not None:`` — a module-global load
  plus one branch.  No tracer object, no method call, no argument
  packing happens unless a tracer is installed.
- **Determinism.**  Events are appended in program order and timestamps
  come from the simulated clock, so a fixed-seed run produces a
  byte-identical trace.  Nothing in this module reads wall-clock time.
- **One schema across engines.**  Every engine (cycle, functional, BSP,
  Ligra, sliced) emits ``round`` spans with the same argument names via
  :mod:`repro.obs.probe`, so cross-system comparisons can be made from
  the telemetry alone.  See DESIGN.md for the full event schema.

Time units: timestamps and durations are in the emitting engine's native
time domain — accelerator clock cycles for the cycle model and the
memory/network substrates, round/iteration indices for the untimed
engines.  Chrome's viewer labels them microseconds; read "us" as the
engine's cycle unit.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "TraceEvent",
    "Tracer",
    "ACTIVE",
    "enabled",
    "install",
    "uninstall",
    "tracing",
]

#: the globally-installed tracer, or None when tracing is disabled.
#: Instrumented code reads this exactly once per potential emission:
#: ``if trace.ACTIVE is not None: trace.ACTIVE.instant(...)``.
ACTIVE: Optional["Tracer"] = None


@dataclass
class TraceEvent:
    """One typed trace event in Chrome trace-event terms.

    ``phase`` follows the Chrome trace-event format: ``"X"`` complete
    span (has ``duration``), ``"B"``/``"E"`` nested span begin/end,
    ``"i"`` instant, ``"C"`` counter (``args`` holds the sampled
    series values).
    """

    name: str
    category: str
    phase: str
    ts: float
    track: str
    duration: float = 0.0
    args: Dict[str, Any] = field(default_factory=dict)

    def to_chrome(self, tid: int, pid: int = 1) -> Dict[str, Any]:
        """The Chrome trace-event dict for this event."""
        record: Dict[str, Any] = {
            "name": self.name,
            "cat": self.category,
            "ph": self.phase,
            "ts": self.ts,
            "pid": pid,
            "tid": tid,
        }
        if self.phase == "X":
            record["dur"] = self.duration
        if self.phase == "i":
            record["s"] = "t"  # instant scoped to its thread/track
        if self.args:
            record["args"] = self.args
        return record


class Tracer:
    """Collects typed trace events in memory.

    A tracer is *installed* globally (:func:`install` / :func:`tracing`)
    so that every instrumented component — queue, DRAM, crossbar,
    processors, baselines — emits into the same event list without any
    object threading.  ``categories`` optionally restricts recording to
    a subset of event categories (e.g. ``{"round", "dram"}``) to keep
    traces small on long runs.
    """

    def __init__(self, categories: Optional[Sequence[str]] = None):
        self.events: List[TraceEvent] = []
        self.categories = frozenset(categories) if categories else None
        #: open begin/end nesting depth per track (diagnostics/tests)
        self._open: Dict[str, int] = {}
        #: end-timestamp stack for nested :meth:`span` blocks
        self._pending_ends: List[float] = []

    # -- recording -----------------------------------------------------
    def wants(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def complete(
        self,
        name: str,
        category: str,
        ts: float,
        duration: float,
        track: str,
        **args: Any,
    ) -> None:
        """Record a complete span (explicit start + duration)."""
        if not self.wants(category):
            return
        self.events.append(
            TraceEvent(name, category, "X", ts, track, duration, args)
        )

    def instant(
        self, name: str, category: str, ts: float, track: str, **args: Any
    ) -> None:
        """Record a point event."""
        if not self.wants(category):
            return
        self.events.append(TraceEvent(name, category, "i", ts, track, 0.0, args))

    def counter(
        self, name: str, ts: float, track: str = "counters", **values: float
    ) -> None:
        """Record a counter sample (one or more series values)."""
        if not self.wants("counter"):
            return
        self.events.append(
            TraceEvent(name, "counter", "C", ts, track, 0.0, dict(values))
        )

    def begin(
        self, name: str, category: str, ts: float, track: str, **args: Any
    ) -> None:
        """Open a nested span (pair with :meth:`end` on the same track)."""
        if not self.wants(category):
            return
        self._open[track] = self._open.get(track, 0) + 1
        self.events.append(TraceEvent(name, category, "B", ts, track, 0.0, args))

    def end(self, name: str, category: str, ts: float, track: str) -> None:
        """Close the innermost open span on ``track``."""
        if not self.wants(category):
            return
        depth = self._open.get(track, 0)
        if depth <= 0:
            raise ValueError(f"end() without begin() on track {track!r}")
        self._open[track] = depth - 1
        self.events.append(TraceEvent(name, category, "E", ts, track))

    @contextmanager
    def span(
        self, name: str, category: str, ts: float, track: str, **args: Any
    ) -> Iterator["Tracer"]:
        """Context manager emitting a begin/end pair.

        The end timestamp must be supplied by calling :meth:`end_at`
        inside the block; if it is not, the span closes at its start
        timestamp (zero-length).
        """
        self.begin(name, category, ts, track, **args)
        self._pending_ends.append(ts)
        try:
            yield self
        finally:
            self.end(name, category, self._pending_ends.pop(), track)

    def end_at(self, ts: float) -> None:
        """Set the end timestamp for the innermost :meth:`span` block."""
        if not self._pending_ends:
            raise ValueError("end_at() outside a span() block")
        self._pending_ends[-1] = ts

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def open_spans(self, track: str) -> int:
        """Currently-unclosed begin/end nesting depth on a track."""
        return self._open.get(track, 0)

    def by_category(self, category: str) -> List[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def by_name(self, name: str) -> List[TraceEvent]:
        return [e for e in self.events if e.name == name]

    def tracks(self) -> List[str]:
        """Track names in first-appearance order (stable tids)."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.track, None)
        return list(seen)

    def clear(self) -> None:
        self.events.clear()
        self._open.clear()
        self._pending_ends.clear()


# ----------------------------------------------------------------------
# Global installation (the one-branch fast path)
# ----------------------------------------------------------------------
def enabled() -> bool:
    """True when a tracer is installed."""
    return ACTIVE is not None


def install(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the global active tracer."""
    global ACTIVE
    ACTIVE = tracer
    return tracer


def uninstall() -> Optional[Tracer]:
    """Remove the active tracer (tracing disabled); returns it."""
    global ACTIVE
    tracer, ACTIVE = ACTIVE, None
    return tracer


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install a tracer for the duration of a block.

    ::

        with trace.tracing() as t:
            result = GraphPulseAccelerator(graph, spec).run()
        export.write_chrome_trace(t, "run.trace.json")

    Restores the previously-installed tracer (usually None) on exit, so
    nested tracing blocks compose.
    """
    global ACTIVE
    tracer = tracer if tracer is not None else Tracer()
    previous = ACTIVE
    ACTIVE = tracer
    try:
        yield tracer
    finally:
        ACTIVE = previous
