"""Serialization and aggregation of telemetry (the read side).

Writers
-------
- :func:`write_chrome_trace` — the Chrome ``chrome://tracing`` /
  Perfetto JSON Object Format: ``{"traceEvents": [...]}`` plus thread
  metadata so tracks render with their names.  Open the file directly at
  https://ui.perfetto.dev or in ``chrome://tracing``.
- :func:`write_metrics_jsonl` — one JSON object per line: TimeSeries
  sample rows (``{"type": "sample", ...}``) followed by a final
  ``{"type": "stats", ...}`` snapshot, so CI and scripts can stream it.

Both writers publish through :func:`repro.ioutil.atomic_open`
(temp + fsync + rename), so a crash mid-export leaves the previous
trace/metrics file intact instead of a torn one (DUR-001).

Readers / aggregators
---------------------
The benchmark harness derives the paper's Figure 13 (per-stage cycles
per event) and Figure 14 (processor/generator time breakdown) from the
telemetry instead of ad-hoc counters: :func:`stage_breakdown` and
:func:`occupancy_breakdown` fold the ``event``/``generate`` spans the
cycle model emits; :func:`round_series` extracts the engine-agnostic
``round`` schema for cross-system comparisons.  All readers accept
either a live :class:`~repro.obs.trace.Tracer` or a list of Chrome
trace-event dicts loaded from disk, so post-hoc analysis of a saved
trace uses the same code path as in-process benchmarking.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Union

from ..ioutil import atomic_open
from .timeseries import TimeSeries
from .trace import TraceEvent, Tracer

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "load_chrome_trace",
    "validate_chrome_trace",
    "write_metrics_jsonl",
    "read_metrics_jsonl",
    "stage_breakdown",
    "occupancy_breakdown",
    "round_series",
]

#: the five Figure 13 stages in the paper's chronological stacking order
STAGES = ("vertex_mem", "process", "gen_buffer", "edge_mem", "generate")

_VALID_PHASES = {"X", "B", "E", "i", "C", "M"}

TraceSource = Union[Tracer, Iterable[Dict[str, Any]]]


# ----------------------------------------------------------------------
# Chrome trace writing
# ----------------------------------------------------------------------
def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """All events as Chrome trace-event dicts, with thread metadata.

    Tracks map to thread ids in first-appearance order, which is
    deterministic for a deterministic run.
    """
    tids = {track: tid for tid, track in enumerate(tracer.tracks())}
    records: List[Dict[str, Any]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": track},
        }
        for track, tid in tids.items()
    ]
    for event in tracer.events:
        records.append(event.to_chrome(tids[event.track]))
    return records


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the trace as Chrome/Perfetto JSON; returns event count."""
    payload = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ns",
        "otherData": {"producer": "repro.obs (GraphPulse reproduction)"},
    }
    with atomic_open(path) as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.write("\n")
    return len(payload["traceEvents"])


def load_chrome_trace(path: str) -> Dict[str, Any]:
    """Load and validate a Chrome trace file; raises on malformed data."""
    with open(path) as handle:
        payload = json.load(handle)
    validate_chrome_trace(payload)
    return payload


def validate_chrome_trace(payload: Any) -> List[Dict[str, Any]]:
    """Check Chrome JSON Object Format structure; returns the events.

    Raises :class:`ValueError` naming the first offending record, so CI
    failures are actionable.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("not a Chrome trace: missing 'traceEvents'")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for index, record in enumerate(events):
        if not isinstance(record, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        phase = record.get("ph")
        if phase not in _VALID_PHASES:
            raise ValueError(
                f"traceEvents[{index}] has unsupported phase {phase!r}"
            )
        if "name" not in record:
            raise ValueError(f"traceEvents[{index}] missing 'name'")
        if phase != "M":
            for key in ("ts", "pid", "tid"):
                if key not in record:
                    raise ValueError(
                        f"traceEvents[{index}] missing {key!r}"
                    )
        if phase == "X" and "dur" not in record:
            raise ValueError(
                f"traceEvents[{index}] is a complete span without 'dur'"
            )
    return events


# ----------------------------------------------------------------------
# Metrics stream (JSONL)
# ----------------------------------------------------------------------
def write_metrics_jsonl(
    path: str,
    timeseries: TimeSeries = None,
    stats: Dict[str, Any] = None,
) -> int:
    """Write sample rows plus a final stats snapshot; returns line count."""
    lines = 0
    with atomic_open(path) as handle:
        if timeseries is not None:
            for row in timeseries.samples:
                record = {"type": "sample", **row}
                handle.write(
                    json.dumps(record, separators=(",", ":"), default=float)
                )
                handle.write("\n")
                lines += 1
        if stats is not None:
            handle.write(
                json.dumps(
                    {"type": "stats", **stats},
                    separators=(",", ":"),
                    default=float,
                )
            )
            handle.write("\n")
            lines += 1
    return lines


def read_metrics_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a metrics JSONL file back into records."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# Telemetry aggregators (the benchmarks' data source)
# ----------------------------------------------------------------------
def _iter_events(source: TraceSource) -> Iterable[Dict[str, Any]]:
    """Normalize a Tracer or Chrome dict list to Chrome-shaped dicts."""
    if isinstance(source, Tracer):
        for event in source.events:
            yield {
                "name": event.name,
                "cat": event.category,
                "ph": event.phase,
                "ts": event.ts,
                "dur": event.duration,
                "args": event.args,
            }
    else:
        for record in source:
            yield record


def stage_breakdown(source: TraceSource) -> Dict[str, float]:
    """Figure 13 from telemetry: mean cycles per event in each stage.

    Sums ``vertex_mem``/``process``/``gen_buffer`` over the cycle
    model's ``event`` spans and ``edge_mem``/``generate`` over its
    ``generate`` spans, normalized by the processed-event count.  The
    result carries an ``events`` key with that count.
    """
    totals = {stage: 0.0 for stage in STAGES}
    events = 0
    for record in _iter_events(source):
        name = record.get("name")
        args = record.get("args") or {}
        if name == "event":
            events += 1
            totals["vertex_mem"] += args.get("vertex_mem", 0.0)
            totals["process"] += args.get("process", 0.0)
            totals["gen_buffer"] += args.get("gen_buffer", 0.0)
        elif name == "generate":
            totals["edge_mem"] += args.get("edge_mem", 0.0)
            totals["generate"] += args.get("generate", 0.0)
    n = max(events, 1)
    breakdown = {stage: totals[stage] / n for stage in STAGES}
    breakdown["events"] = float(events)
    return breakdown


def occupancy_breakdown(source: TraceSource) -> Dict[str, float]:
    """Figure 14 source data from telemetry: total cycles per activity.

    Returns the same quantities the cycle model's
    :class:`~repro.core.accelerator.OccupancyProfile` accumulates —
    processor {vertex_read, process, stall} and generator
    {edge_read, generate, stall} cycle totals — summed from the
    ``event`` and ``generate`` spans.
    """
    out = {
        "processor_vertex_read": 0.0,
        "processor_process": 0.0,
        "processor_stall": 0.0,
        "generator_edge_read": 0.0,
        "generator_generate": 0.0,
        "generator_stall": 0.0,
    }
    for record in _iter_events(source):
        name = record.get("name")
        args = record.get("args") or {}
        if name == "event":
            out["processor_vertex_read"] += args.get("vertex_mem", 0.0)
            out["processor_process"] += args.get("process", 0.0)
            out["processor_stall"] += args.get("stall", 0.0)
        elif name == "generate":
            out["generator_edge_read"] += args.get("edge_mem", 0.0)
            out["generator_generate"] += args.get("generate", 0.0)
            out["generator_stall"] += args.get("stall", 0.0)
    return out


def round_series(
    source: TraceSource, engine: str = None
) -> List[Dict[str, Any]]:
    """All ``round`` spans (optionally one engine's), in emission order.

    Every engine emits this shared schema, so a cross-system queue/work
    comparison is one call per engine over the same trace.
    """
    rounds = []
    for record in _iter_events(source):
        if record.get("name") != "round":
            continue
        args = dict(record.get("args") or {})
        if engine is not None and args.get("engine") != engine:
            continue
        args["ts"] = record.get("ts", 0.0)
        args["dur"] = record.get("dur", 0.0)
        rounds.append(args)
    return rounds
