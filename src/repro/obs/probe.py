"""Typed probe emitters: the instrumentation vocabulary.

Every instrumented component calls one of these helpers instead of
composing raw trace events, so the event *schema* — names, categories,
track naming, argument keys — lives in exactly one module and the
read-side aggregators in :mod:`repro.obs.export` can rely on it.

Hot call sites guard the call with the one-branch fast path::

    from ..obs import probe, trace as obs_trace
    ...
    if obs_trace.ACTIVE is not None:
        probe.dram_burst(channel, start, done, ...)

Each helper re-checks the global tracer so it is also safe to call
unguarded from cold paths.

Schema summary (full details in DESIGN.md):

===============  ========  =======================  =====================
name             category  track                    emitted by
===============  ========  =======================  =====================
round            round     ``engine:<name>``        every engine
event            proc      ``proc<i>``              cycle model
generate         gen       ``gen<i>``               cycle model
queue.insert     queue     ``queue``                coalescing queue
queue.coalesce   queue     ``queue``                coalescing queue
queue.drain      queue     ``queue``                cycle model scheduler
bin.sweep        queue     ``<bin name>``           bit-level bin model
bin.row_conflict queue     ``<bin name>``           bit-level bin model
dram.txn         dram      ``dram``                 DRAM system
dram.burst       dram      ``dram.ch<i>``           DRAM channels
cache.hit/miss   mem       ``<cache name>``         caches / scratchpads
xbar.send        network   ``<xbar>.out<p>``        crossbar
arb.grant        network   ``<arbiter name>``       arbiters
slice.activate   slice     ``slice<i>``             sliced runtime
superround       slice     ``superrounds``          multi-accel runtime
busy/issue/xfer  resource  ``<resource name>``      sim.kernel resources
fault.inject     resil     ``resilience``           fault injector
fault.detect     resil     ``resilience``           invariants / parity
recovery         resil     ``resilience``           repair / rollback / retry
checkpoint       resil     ``resilience``           checkpoint manager
<counters>       counter   ``counters``             engines / TimeSeries
===============  ========  =======================  =====================
"""

from __future__ import annotations

from typing import Any, Optional

from . import trace

__all__ = [
    "CAT_ROUND",
    "CAT_PROC",
    "CAT_GEN",
    "CAT_QUEUE",
    "CAT_DRAM",
    "CAT_MEM",
    "CAT_NETWORK",
    "CAT_SLICE",
    "CAT_RESOURCE",
    "CAT_RESIL",
    "round_span",
    "event_process",
    "event_generate",
    "queue_insert",
    "queue_drain",
    "bin_sweep",
    "bin_row_conflict",
    "dram_txn",
    "dram_burst",
    "cache_access",
    "xbar_send",
    "arb_grant",
    "slice_activation",
    "super_round",
    "resource_busy",
    "fault_injected",
    "fault_detected",
    "recovery_span",
    "checkpoint_taken",
    "checkpoint_write",
    "journal_flush",
    "resume_span",
    "counter",
]

CAT_ROUND = "round"
CAT_PROC = "proc"
CAT_GEN = "gen"
CAT_QUEUE = "queue"
CAT_DRAM = "dram"
CAT_MEM = "mem"
CAT_NETWORK = "network"
CAT_SLICE = "slice"
CAT_RESOURCE = "resource"
CAT_RESIL = "resil"


def _active() -> Optional[trace.Tracer]:
    return trace.ACTIVE


# ----------------------------------------------------------------------
# Round-level schema shared by every engine
# ----------------------------------------------------------------------
def round_span(
    engine: str,
    index: int,
    start: float,
    end: float,
    *,
    events_processed: int,
    events_produced: int = 0,
    **extra: Any,
) -> None:
    """One scheduler round / BSP iteration, in the engine's time domain.

    Untimed engines pass ``start=index`` and ``end=index + 1`` so the
    round timeline renders as a unit-width strip chart.
    """
    t = _active()
    if t is None:
        return
    t.complete(
        "round",
        CAT_ROUND,
        start,
        max(end - start, 0.0),
        f"engine:{engine}",
        engine=engine,
        index=index,
        events_processed=events_processed,
        events_produced=events_produced,
        **extra,
    )


# ----------------------------------------------------------------------
# Cycle-model pipeline stages (Figures 13 / 14 source data)
# ----------------------------------------------------------------------
def event_process(
    proc_index: int,
    start: float,
    end: float,
    *,
    vertex: int,
    vertex_mem: float,
    process: float,
    gen_buffer: float = 0.0,
    stall: float = 0.0,
) -> None:
    """One event's life on an event processor (vertex read + apply)."""
    t = _active()
    if t is None:
        return
    t.complete(
        "event",
        CAT_PROC,
        start,
        max(end - start, 0.0),
        f"proc{proc_index}",
        vertex=vertex,
        vertex_mem=vertex_mem,
        process=process,
        gen_buffer=gen_buffer,
        stall=stall,
    )


def event_generate(
    stream_index: int,
    start: float,
    end: float,
    *,
    vertex: int,
    fanout: int,
    edge_mem: float,
    generate: float,
    stall: float = 0.0,
) -> None:
    """One vertex's outgoing-event generation on a generation stream."""
    t = _active()
    if t is None:
        return
    t.complete(
        "generate",
        CAT_GEN,
        start,
        max(end - start, 0.0),
        f"gen{stream_index}",
        vertex=vertex,
        fanout=fanout,
        edge_mem=edge_mem,
        generate=generate,
        stall=stall,
    )


# ----------------------------------------------------------------------
# Coalescing queue
# ----------------------------------------------------------------------
def queue_insert(vertex: int, bin_index: int, ts: float, coalesced: bool) -> None:
    t = _active()
    if t is None:
        return
    t.instant(
        "queue.coalesce" if coalesced else "queue.insert",
        CAT_QUEUE,
        ts,
        "queue",
        vertex=vertex,
        bin=bin_index,
    )


def queue_drain(
    bin_index: int, ts: float, count: int, occupancy_after: int
) -> None:
    t = _active()
    if t is None:
        return
    t.instant(
        "queue.drain",
        CAT_QUEUE,
        ts,
        "queue",
        bin=bin_index,
        count=count,
        occupancy_after=occupancy_after,
    )
    t.counter("queue_occupancy", ts, occupancy=occupancy_after)


def bin_sweep(
    name: str, start: float, end: float, *, drained: int, rows: int
) -> None:
    t = _active()
    if t is None:
        return
    t.complete(
        "bin.sweep",
        CAT_QUEUE,
        start,
        max(end - start, 0.0),
        name,
        drained=drained,
        rows=rows,
    )


def bin_row_conflict(name: str, ts: float, *, row: int, stall: float) -> None:
    t = _active()
    if t is None:
        return
    t.instant("bin.row_conflict", CAT_QUEUE, ts, name, row=row, stall=stall)


# ----------------------------------------------------------------------
# Memory system
# ----------------------------------------------------------------------
def dram_txn(
    start: float,
    end: float,
    *,
    kind: str,
    nbytes: int,
    write: bool,
    lines: int,
) -> None:
    """One (possibly multi-line) DRAM transaction at the system level."""
    t = _active()
    if t is None:
        return
    t.complete(
        "dram.txn",
        CAT_DRAM,
        start,
        max(end - start, 0.0),
        "dram",
        kind=kind,
        bytes=nbytes,
        write=write,
        lines=lines,
    )


def dram_burst(
    channel: int,
    start: float,
    end: float,
    *,
    row_hit: bool,
    write: bool,
    nbytes: int,
) -> None:
    """One line burst on one channel (bank access + bus transfer)."""
    t = _active()
    if t is None:
        return
    t.complete(
        "dram.burst",
        CAT_DRAM,
        start,
        max(end - start, 0.0),
        f"dram.ch{channel}",
        row_hit=row_hit,
        write=write,
        bytes=nbytes,
    )


def cache_access(name: str, ts: float, *, hit: bool, kind: str) -> None:
    """A cache or prefetch-scratchpad lookup (hit/miss instant)."""
    t = _active()
    if t is None:
        return
    t.instant("cache.hit" if hit else "cache.miss", CAT_MEM, ts, name, kind=kind)


# ----------------------------------------------------------------------
# Interconnect
# ----------------------------------------------------------------------
def xbar_send(
    name: str,
    source: int,
    dest_port: int,
    start: float,
    end: float,
    *,
    wait: float,
) -> None:
    t = _active()
    if t is None:
        return
    t.complete(
        "xbar.send",
        CAT_NETWORK,
        start,
        max(end - start, 0.0),
        f"{name}.out{dest_port}",
        source=source,
        wait=wait,
    )


def arb_grant(name: str, ts: float, *, wait: float) -> None:
    t = _active()
    if t is None:
        return
    t.instant("arb.grant", CAT_NETWORK, ts, name, wait=wait)


# ----------------------------------------------------------------------
# Sliced / multi-accelerator runtimes (round-level)
# ----------------------------------------------------------------------
def slice_activation(
    slice_index: int,
    pass_index: int,
    *,
    events_in: int,
    events_processed: int,
    events_spilled: int,
    rounds: int,
) -> None:
    t = _active()
    if t is None:
        return
    t.complete(
        "slice.activate",
        CAT_SLICE,
        float(pass_index),
        1.0,
        f"slice{slice_index}",
        pass_index=pass_index,
        events_in=events_in,
        events_processed=events_processed,
        events_spilled=events_spilled,
        rounds=rounds,
    )


def super_round(index: int, *, messages: int, events_processed: int) -> None:
    t = _active()
    if t is None:
        return
    t.complete(
        "superround",
        CAT_SLICE,
        float(index),
        1.0,
        "superrounds",
        index=index,
        messages=messages,
        events_processed=events_processed,
    )


# ----------------------------------------------------------------------
# Resource-timing primitives (sim.kernel)
# ----------------------------------------------------------------------
def resource_busy(
    name: str, kind: str, start: float, duration: float, **args: Any
) -> None:
    """Occupancy span of a next-free-cycle resource (busy/issue/xfer)."""
    t = _active()
    if t is None or duration <= 0:
        return
    t.complete(kind, CAT_RESOURCE, start, duration, name, **args)


# ----------------------------------------------------------------------
# Resilience: fault -> detect -> recover timelines on one track
# ----------------------------------------------------------------------
def fault_injected(
    kind: str, ts: float, *, vertex: int = -1, detail: str = ""
) -> None:
    """One injected fault (drop/duplicate/bitflip/dram/spill/lane)."""
    t = _active()
    if t is None:
        return
    args: dict = {"kind": kind}
    if vertex >= 0:
        args["vertex"] = vertex
    if detail:
        args["detail"] = detail
    t.instant("fault.inject", CAT_RESIL, ts, "resilience", **args)


def fault_detected(
    mechanism: str, ts: float, *, vertex: int = -1, **extra: Any
) -> None:
    """A detector fired: ``mechanism`` is ``parity``, ``invariant``,
    ``guard`` (NaN/overflow), ``watchdog``, ``dram-crc`` or ``lane``."""
    t = _active()
    if t is None:
        return
    args: dict = {"mechanism": mechanism}
    if vertex >= 0:
        args["vertex"] = vertex
    args.update(extra)
    t.instant("fault.detect", CAT_RESIL, ts, "resilience", **args)


def worker_activation(
    worker_id: int,
    slice_index: int,
    pass_index: int,
    *,
    events_in: int,
    events_processed: int,
    events_spilled: int,
    rounds: int,
    epoch: int = 0,
) -> None:
    """One slice activation attributed to its worker process.

    Emitted by the multi-process supervisor (workers never write to the
    parent's tracer), so every worker's spans land in the one Chrome
    trace on its own ``workerN`` track.  Timestamps stay in the engine's
    pass domain — duration is the activation's engine rounds — keeping
    traces deterministic like every other emitter here.
    """
    t = _active()
    if t is None:
        return
    t.complete(
        "worker.activate",
        CAT_SLICE,
        float(pass_index),
        max(float(rounds), 1.0),
        f"worker{worker_id}",
        slice=slice_index,
        pass_index=pass_index,
        epoch=epoch,
        events_in=events_in,
        events_processed=events_processed,
        events_spilled=events_spilled,
        rounds=rounds,
    )


def recovery_span(
    action: str, start: float, end: float, **extra: Any
) -> None:
    """One recovery action span: ``repair-epoch``, ``rollback``,
    ``dram-retry`` or ``lane-removal``."""
    t = _active()
    if t is None:
        return
    t.complete(
        "recovery",
        CAT_RESIL,
        start,
        max(end - start, 0.0),
        "resilience",
        action=action,
        **extra,
    )


def checkpoint_taken(index: int, ts: float, *, vertices: int, pending: int) -> None:
    """A checkpoint of vertex state + queue occupancy was captured."""
    t = _active()
    if t is None:
        return
    t.instant(
        "checkpoint",
        CAT_RESIL,
        ts,
        "resilience",
        index=index,
        vertices=vertices,
        pending=pending,
    )


def checkpoint_write(
    index: int, ts: float, *, path: str, nbytes: int, round_index: int
) -> None:
    """A checkpoint was durably persisted (atomic write + manifest)."""
    t = _active()
    if t is None:
        return
    t.instant(
        "checkpoint.write",
        CAT_RESIL,
        ts,
        "durability",
        index=index,
        path=path,
        bytes=nbytes,
        round=round_index,
    )


def journal_flush(ts: float, *, commit: int, records: int, nbytes: int) -> None:
    """The spill journal flushed a pass's records and fsynced a commit."""
    t = _active()
    if t is None:
        return
    t.instant(
        "journal.flush",
        CAT_RESIL,
        ts,
        "durability",
        commit=commit,
        records=records,
        bytes=nbytes,
    )


def resume_span(
    start: float, end: float, *, checkpoint: int, round_index: int, engine: str
) -> None:
    """One restore-from-disk: manifest validation through engine restart."""
    t = _active()
    if t is None:
        return
    t.complete(
        "resume",
        CAT_RESIL,
        start,
        max(end - start, 0.0),
        "durability",
        checkpoint=checkpoint,
        round=round_index,
        engine=engine,
    )


def counter(name: str, ts: float, **values: float) -> None:
    """A counter sample on the shared ``counters`` track."""
    t = _active()
    if t is None:
        return
    t.counter(name, ts, **values)
