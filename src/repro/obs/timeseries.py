"""Gauge sampling on a fixed cycle grid (the metrics stream).

The paper's queue-occupancy curves (Figure 4) and bandwidth plots are
time series sampled while the simulation runs.  :class:`TimeSeries`
reproduces that: gauges (callables returning the current value of queue
occupancy, DRAM bytes, processor busy cycles, ...) are registered once,
then the engine calls :meth:`advance` as simulated time progresses and
the series takes one sample row at every crossed multiple of
``interval``.

Because the cycle models advance time in uneven jumps (a round barrier
can skip thousands of cycles), "sampling at cycle k*interval" means the
first state observed at-or-after that boundary: each crossed boundary
gets exactly one row, stamped with the boundary cycle, holding the gauge
values current when the boundary was crossed.  This keeps sampling
deterministic and monotone: rows appear in strictly increasing cycle
order and a boundary is never sampled twice.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

__all__ = ["TimeSeries"]


class TimeSeries:
    """Samples registered gauges at every crossed ``interval`` boundary."""

    def __init__(self, interval: int = 1000, name: str = "metrics"):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = interval
        self.name = name
        self._gauges: Dict[str, Callable[[], float]] = {}
        self.samples: List[Dict[str, float]] = []
        #: cycle of the most recent boundary already sampled (-1: none)
        self._last_boundary: Optional[int] = None

    # ------------------------------------------------------------------
    def add_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a gauge; ``fn()`` is called at every sample."""
        if name == "cycle":
            raise ValueError("'cycle' is the reserved timestamp column")
        self._gauges[name] = fn

    @property
    def gauge_names(self) -> List[str]:
        return list(self._gauges)

    # ------------------------------------------------------------------
    def _row(self, cycle: int) -> Dict[str, float]:
        row: Dict[str, float] = {"cycle": float(cycle)}
        for name, fn in self._gauges.items():
            row[name] = float(fn())
        return row

    def sample(self, cycle: int) -> Dict[str, float]:
        """Take one unconditional sample stamped at ``cycle``."""
        row = self._row(cycle)
        self.samples.append(row)
        return row

    def advance(self, cycle: int) -> int:
        """Advance simulated time to ``cycle``; returns samples taken.

        One row is recorded per interval boundary in
        ``(last_sampled_boundary, cycle]``.  All rows from one call hold
        the *current* gauge values (the simulation state is only
        observable now), stamped with their boundary cycles, so plots
        keep an even time grid.
        """
        if cycle < 0:
            raise ValueError("cycle must be non-negative")
        boundary = (cycle // self.interval) * self.interval
        start = (
            self.interval
            if self._last_boundary is None
            else self._last_boundary + self.interval
        )
        taken = 0
        for b in range(start, boundary + 1, self.interval):
            self.samples.append(self._row(b))
            taken += 1
        if boundary >= start or self._last_boundary is None:
            self._last_boundary = max(self._last_boundary or 0, boundary)
        return taken

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.samples)

    def series(self, name: str) -> List[float]:
        """All sampled values of one column (including ``cycle``)."""
        return [row[name] for row in self.samples if name in row]
