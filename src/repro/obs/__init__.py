"""Observability: structured tracing, gauge time series, trace export.

The telemetry layer the paper's evaluation implies: every simulated
component emits typed trace events (spans, instants, counters) through
:mod:`repro.obs.probe` into a globally-installed
:class:`~repro.obs.trace.Tracer`; :class:`~repro.obs.timeseries.TimeSeries`
samples gauges on a fixed cycle grid; :mod:`repro.obs.export` writes
Chrome/Perfetto traces and JSONL metric streams and aggregates telemetry
back into the figures' breakdowns.

Tracing is disabled by default and its fast path is one branch::

    from repro.obs import Tracer, tracing, write_chrome_trace

    with tracing() as t:
        result = GraphPulseAccelerator(graph, spec).run()
    write_chrome_trace(t, "run.trace.json")
"""

from . import bench, export, metrics, probe, timeseries, trace
from .export import (
    chrome_trace_events,
    load_chrome_trace,
    occupancy_breakdown,
    read_metrics_jsonl,
    round_series,
    stage_breakdown,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)
from .metrics import MetricsRegistry, ProgressReporter, collecting
from .timeseries import TimeSeries
from .trace import TraceEvent, Tracer, enabled, install, tracing, uninstall

__all__ = [
    "trace",
    "probe",
    "timeseries",
    "export",
    "metrics",
    "bench",
    "MetricsRegistry",
    "ProgressReporter",
    "collecting",
    "Tracer",
    "TraceEvent",
    "TimeSeries",
    "enabled",
    "install",
    "uninstall",
    "tracing",
    "chrome_trace_events",
    "write_chrome_trace",
    "load_chrome_trace",
    "validate_chrome_trace",
    "write_metrics_jsonl",
    "read_metrics_jsonl",
    "stage_breakdown",
    "occupancy_breakdown",
    "round_series",
]
