"""Labelled metrics registry (the counter side of the telemetry layer).

:mod:`repro.obs.trace` records *events*; this module records
*aggregates*.  Engines, the coalescing queue, and the multi-process
supervisor each grew an ad-hoc stats dict (``QueueStats``,
``TrafficCounters``, per-engine ``stats`` payloads); the
:class:`MetricsRegistry` gives them one shared vocabulary — Counter,
Gauge, Histogram, each optionally labelled — plus one
:meth:`~MetricsRegistry.snapshot` that serializes everything to a plain
dict for ``--json`` payloads and the JSONL metrics stream.

Design constraints (identical to the tracer's):

- **Disabled metrics must be free.**  Instrumented hot paths guard
  every update with ``if metrics.ACTIVE is not None:`` — a
  module-global load plus one branch, the exact pattern
  :data:`repro.obs.trace.ACTIVE` established.  No registry object, no
  dict lookup, no argument packing happens unless one is installed.
- **Determinism.**  Nothing here reads the wall clock; progress
  heartbeats are keyed on engine rounds, not elapsed seconds, so an
  instrumented run's trajectory stays a pure function of
  (graph, algorithm, seed).  Wall-clock throughput lives exclusively in
  :mod:`repro.obs.bench` (see the DET-001 allowlist rationale).
- **Deterministic snapshots.**  Instrument keys are emitted in sorted
  order with labels encoded ``name{k=v,...}`` (labels sorted by key),
  so two identical runs produce byte-identical snapshot JSON.
"""

from __future__ import annotations

import math
import sys
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProgressReporter",
    "ACTIVE",
    "enabled",
    "install",
    "uninstall",
    "collecting",
    "round_tick",
]

#: the globally-installed registry, or None when metrics are disabled.
#: Instrumented code reads this exactly once per potential update:
#: ``if metrics.ACTIVE is not None: metrics.ACTIVE.counter(...).inc()``.
ACTIVE: Optional["MetricsRegistry"] = None


def _encode_key(name: str, labels: Dict[str, Any]) -> str:
    """``name{k=v,...}`` with labels sorted by key; bare name when none."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically-increasing count (events drained, spills, …)."""

    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, Any]):
        self.name = name
        self.labels = dict(labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A point-in-time level (queue occupancy, pending slices, …)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, Any]):
        self.name = name
        self.labels = dict(labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """A sample distribution (batch sizes, rounds per activation, …).

    Samples are kept exactly — run lengths here are thousands, not
    billions — so percentiles are computed from the real data instead
    of bucket boundaries.  ``observe`` rejects NaN loudly: a NaN would
    silently poison ``sum`` and sort unpredictably, corrupting every
    later percentile.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: Dict[str, Any]):
        self.name = name
        self.labels = dict(labels)
        self.samples: List[float] = []
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(
                f"histogram {self.name!r} rejects NaN observations"
            )
        self.samples.append(value)
        self.sum += value

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> Optional[float]:
        return self.sum / len(self.samples) if self.samples else None

    def percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile (0..100), linearly interpolated.

        ``None`` for an empty histogram; the sole sample for a
        single-observation one.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p!r}")
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
        }
        if self.samples:
            payload.update(
                min=min(self.samples),
                max=max(self.samples),
                mean=self.mean(),
                p50=self.percentile(50),
                p95=self.percentile(95),
            )
        return payload


class ProgressReporter:
    """Round-keyed heartbeat for long runs (the ``--progress`` flag).

    Emits one line every ``interval`` rounds to ``stream`` (stderr by
    default, via ``.write`` — bare ``print()`` is banned outside the
    CLI by OBS-001).  Keyed on the engine's deterministic round counter
    rather than elapsed time so enabling it never perturbs a replayed
    trajectory.
    """

    def __init__(self, interval: int = 1000, stream=None):
        if interval < 1:
            raise ValueError(f"progress interval must be >= 1, got {interval}")
        self.interval = int(interval)
        self.stream = stream if stream is not None else sys.stderr
        self.emitted = 0

    def tick(self, engine: str, index: int, events_processed: int) -> None:
        if (index + 1) % self.interval != 0:
            return
        self.emitted += 1
        self.stream.write(
            f"progress: engine={engine} round={index + 1} "
            f"events={events_processed}\n"
        )
        flush = getattr(self.stream, "flush", None)
        if flush is not None:
            flush()


class MetricsRegistry:
    """Get-or-create store of labelled instruments.

    Instruments are identified by ``(name, labels)``; asking twice for
    the same identity returns the same object, so call sites never
    thread instrument handles around.  Asking for an existing name with
    a different *kind* raises — a counter silently shadowing a gauge is
    a bug at the call site.
    """

    def __init__(self):
        self._instruments: Dict[str, Any] = {}
        #: optional round-keyed heartbeat, driven by :func:`round_tick`
        self.progress: Optional[ProgressReporter] = None
        #: cumulative events seen by :func:`round_tick`, per engine
        self._round_events: Dict[str, int] = {}

    def _get(self, factory, name: str, labels: Dict[str, Any]):
        key = _encode_key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(name, labels)
            self._instruments[key] = instrument
        elif not isinstance(instrument, factory):
            raise ValueError(
                f"metric {key!r} is a {instrument.kind}, not a "
                f"{factory.kind}"
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Every instrument as ``{encoded-key: {...}}``, sorted by key."""
        return {
            key: self._instruments[key].to_dict()
            for key in sorted(self._instruments)
        }


# ----------------------------------------------------------------------
# Global installation (the one-branch fast path)
# ----------------------------------------------------------------------
def enabled() -> bool:
    """True when a registry is installed."""
    return ACTIVE is not None


def install(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the global active registry."""
    global ACTIVE
    ACTIVE = registry
    return registry


def uninstall() -> Optional[MetricsRegistry]:
    """Remove the active registry (metrics disabled); returns it."""
    global ACTIVE
    registry, ACTIVE = ACTIVE, None
    return registry


@contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Install a registry for the duration of a block.

    ::

        with metrics.collecting() as m:
            result = build_engine("functional", (graph, spec), {}).run()
        payload = m.snapshot()

    Restores the previously-installed registry (usually None) on exit,
    so nested collection blocks compose — mirroring
    :func:`repro.obs.trace.tracing`.
    """
    global ACTIVE
    registry = registry if registry is not None else MetricsRegistry()
    previous = ACTIVE
    ACTIVE = registry
    try:
        yield registry
    finally:
        ACTIVE = previous


def round_tick(engine: str, index: int, events_processed: int = 0) -> None:
    """One engine round completed — the shared per-round instrument.

    Call sites guard with ``if metrics.ACTIVE is not None`` so this
    costs one branch when disabled.  Updates the round counter, the
    per-round batch-size histogram, and drives the ``--progress``
    heartbeat when one is attached.
    """
    registry = ACTIVE
    if registry is None:
        return
    registry.counter("engine.rounds", engine=engine).inc()
    registry.counter("engine.events_processed", engine=engine).inc(
        events_processed
    )
    registry.histogram("engine.round_events", engine=engine).observe(
        events_processed
    )
    total = registry._round_events.get(engine, 0) + events_processed
    registry._round_events[engine] = total
    if registry.progress is not None:
        registry.progress.tick(engine, index, total)
