"""Resilience campaign: sweep fault models, measure recovery quality.

An architecture-level resilience study in the spirit of the paper's
Figure 10/14 methodology: for every (algorithm, fault kind) cell the
runner executes a fault-free reference run and a seeded faulty run with
detection + recovery enabled, then reports

- whether the faulty run converged (no crash, no unrecoverable fault),
- whether it *recovered* — final state within tolerance of the
  reference (L-inf <= 1e-6 for numeric algorithms, exact equality for
  label/level algorithms),
- how many faults were injected/detected and what recovery cost: extra
  rounds or cycles past the point where the fault-free run would have
  terminated (the harness's ``recovery_overhead``).

Fault kinds bind to the engine layer they live in: ``dram`` errors only
exist in the cycle-accurate model and ``spill`` loss only in the sliced
runtime, so those kinds override the requested engine.  Engines are
imported lazily to keep ``repro.resilience`` importable from inside the
engines themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..algorithms import get_algorithm
from ..errors import ReproError
from ..graph import CSRGraph
from .faults import FAULT_KINDS, FaultPlan
from .harness import ResilienceConfig

__all__ = [
    "DEFAULT_ALGORITHMS",
    "RunReport",
    "CampaignResult",
    "run_campaign",
    "format_report",
]

DEFAULT_ALGORITHMS = ("pagerank", "sssp", "bfs", "cc")

#: L-inf acceptance bound for numeric (additive) algorithms
NUMERIC_TOLERANCE = 1e-6

#: fault kinds that only exist in a specific engine layer
_KIND_ENGINE = {"dram": "cycle", "spill": "sliced"}


@dataclass
class RunReport:
    """One campaign cell: algorithm x graph x fault kind."""

    algorithm: str
    graph: str
    kind: str
    engine: str
    rate: float
    seed: int
    converged: bool = False
    recovered: bool = False
    error: float = float("nan")  #: L-inf vs the fault-free reference
    faults: int = 0
    detections: int = 0
    repair_epochs: int = 0
    rollbacks: int = 0
    overhead: float = 0.0  #: recovery cycles (cycle engine) or rounds
    time_unit: str = "rounds"
    failure: str = ""  #: exception text when the run did not complete

    def to_dict(self) -> Dict[str, Any]:
        record = {
            "algorithm": self.algorithm,
            "graph": self.graph,
            "kind": self.kind,
            "engine": self.engine,
            "rate": self.rate,
            "seed": self.seed,
            "converged": self.converged,
            "recovered": self.recovered,
            "error": None if np.isnan(self.error) else self.error,
            "faults": self.faults,
            "detections": self.detections,
            "repair_epochs": self.repair_epochs,
            "rollbacks": self.rollbacks,
            "overhead": self.overhead,
            "time_unit": self.time_unit,
        }
        if self.failure:
            record["failure"] = self.failure
        return record


@dataclass
class CampaignResult:
    """All cells of one campaign sweep."""

    rate: float
    seed: int
    reports: List[RunReport] = field(default_factory=list)

    @property
    def convergence_rate(self) -> float:
        if not self.reports:
            return 1.0
        return sum(r.converged for r in self.reports) / len(self.reports)

    @property
    def recovery_rate(self) -> float:
        if not self.reports:
            return 1.0
        return sum(r.recovered for r in self.reports) / len(self.reports)

    @property
    def total_faults(self) -> int:
        return sum(r.faults for r in self.reports)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rate": self.rate,
            "seed": self.seed,
            "convergence_rate": self.convergence_rate,
            "recovery_rate": self.recovery_rate,
            "total_faults": self.total_faults,
            "runs": [r.to_dict() for r in self.reports],
        }


#: propagate threshold for the additive campaign workloads.  The
#: fault-free quiescent state deviates from the fixed point by an
#: unpropagated tail proportional to this threshold (largest in the
#: sliced runtime, which re-drains each slice to local quiescence every
#: activation); repair epochs park a recovered run *at* the fixed point,
#: so the threshold must keep the reference's own tail band well inside
#: the L-inf acceptance bound.
_ADDITIVE_THRESHOLD = 1e-9


def _prepare_workload(
    algorithm: str, graph: CSRGraph
) -> Tuple[CSRGraph, Any]:
    """Algorithm-specific graph preprocessing + spec construction."""
    if algorithm == "cc":
        from ..algorithms.connected_components import symmetrize

        prepared = symmetrize(graph)
        return prepared, get_algorithm("cc", graph=prepared)
    if algorithm == "sssp":
        prepared = graph if graph.is_weighted else graph.with_unit_weights()
        return prepared, get_algorithm("sssp", graph=prepared)
    if algorithm == "adsorption":
        from ..algorithms.adsorption import normalize_inbound_weights

        prepared = normalize_inbound_weights(graph)
        return prepared, get_algorithm(
            "adsorption", graph=prepared, threshold=_ADDITIVE_THRESHOLD
        )
    if algorithm == "pagerank":
        return graph, get_algorithm(
            "pagerank", graph=graph, threshold=_ADDITIVE_THRESHOLD
        )
    return graph, get_algorithm(algorithm, graph=graph)


def _execute(
    engine: str,
    graph: CSRGraph,
    spec: Any,
    resilience: Optional[ResilienceConfig],
    *,
    num_slices: int = 2,
) -> Tuple[np.ndarray, float, str, Optional[Dict[str, Any]]]:
    """Run one engine; returns (state, duration, time_unit, summary)."""
    from ..core.engines import build_engine

    options: Dict[str, Any] = {}
    if engine == "sliced":
        options["num_slices"] = num_slices
    elif engine not in ("functional", "cycle"):
        raise ValueError(f"unknown campaign engine {engine!r}")
    result = build_engine(
        engine, (graph, spec), options, resilience=resilience
    ).run()
    if engine == "cycle":
        duration, unit = float(result.stats["cycles"]), "cycles"
    else:
        duration, unit = float(result.rounds), "rounds"
    return result.values, duration, unit, result.resilience


def _compare(spec: Any, reference: np.ndarray, faulty: np.ndarray) -> Tuple[float, bool]:
    """(L-inf error, recovered?) treating inf==inf as exact agreement."""
    both_inf = (
        np.isinf(reference) & np.isinf(faulty)
        & (np.sign(reference) == np.sign(faulty))
    )
    with np.errstate(invalid="ignore"):  # inf - inf where both_inf
        diff = np.abs(reference - faulty)
    diff[both_inf] = 0.0
    if np.isnan(diff).any():
        return float("inf"), False
    error = float(diff.max()) if diff.size else 0.0
    if spec.additive:
        return error, error <= NUMERIC_TOLERANCE
    return error, error == 0.0


def run_campaign(
    graphs: Mapping[str, CSRGraph],
    *,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    kinds: Sequence[str] = FAULT_KINDS,
    engine: str = "functional",
    rate: float = 1e-3,
    seed: int = 0,
    checkpoint_interval: Optional[int] = None,
    dead_lanes: Optional[Mapping[int, int]] = None,
    parity_coverage: float = 1.0,
    num_slices: int = 2,
) -> CampaignResult:
    """Sweep every (graph, algorithm, fault kind) cell at one fault rate.

    ``engine`` is the layer exercised for layer-agnostic kinds
    (drop/duplicate/bitflip); ``dram`` always runs the cycle model and
    ``spill`` always runs the sliced runtime.  ``dead_lanes`` adds a
    dead-lane scenario (cycle engine) on top of every faulty run.
    """
    campaign = CampaignResult(rate=rate, seed=seed)
    for graph_name, graph in graphs.items():
        for algorithm in algorithms:
            prepared, spec = _prepare_workload(algorithm, graph)
            references: Dict[str, np.ndarray] = {}
            for kind in kinds:
                run_engine = _KIND_ENGINE.get(kind, engine)
                report = RunReport(
                    algorithm=algorithm,
                    graph=graph_name,
                    kind=kind,
                    engine=run_engine,
                    rate=rate,
                    seed=seed,
                )
                if run_engine not in references:
                    reference, _, _, _ = _execute(
                        run_engine, prepared, spec, None, num_slices=num_slices
                    )
                    references[run_engine] = reference
                plan = FaultPlan.uniform(
                    rate,
                    seed=seed,
                    kinds=(kind,),
                    dead_lanes=dead_lanes if run_engine == "cycle" else None,
                    parity_coverage=parity_coverage,
                )
                config = ResilienceConfig(
                    fault_plan=plan, checkpoint_interval=checkpoint_interval
                )
                try:
                    state, duration, unit, summary = _execute(
                        run_engine,
                        prepared,
                        spec,
                        config,
                        num_slices=num_slices,
                    )
                except ReproError as exc:
                    report.failure = f"{type(exc).__name__}: {exc}"
                    campaign.reports.append(report)
                    continue
                report.converged = True
                report.time_unit = unit
                report.error, report.recovered = _compare(
                    spec, references[run_engine], state
                )
                if summary is not None:
                    report.faults = summary["faults"]["total"]
                    report.detections = sum(summary["detections"].values())
                    report.repair_epochs = summary["repair"]["epochs"]
                    report.rollbacks = summary["checkpoints"]["rollbacks"]
                    report.overhead = summary["recovery_overhead"]
                campaign.reports.append(report)
    return campaign


def format_report(campaign: CampaignResult) -> str:
    """Human-readable campaign table (one row per cell)."""
    header = (
        f"{'algorithm':<12} {'graph':<10} {'kind':<10} {'engine':<10} "
        f"{'faults':>6} {'detect':>6} {'epochs':>6} "
        f"{'error':>10} {'overhead':>12} {'status':<10}"
    )
    lines = [
        f"resilience campaign: rate={campaign.rate:g} seed={campaign.seed}",
        header,
        "-" * len(header),
    ]
    for r in campaign.reports:
        if not r.converged:
            status = "FAILED"
        elif r.recovered:
            status = "recovered"
        else:
            status = "DIVERGED"
        error = "-" if np.isnan(r.error) else f"{r.error:.2e}"
        overhead = f"{r.overhead:g} {r.time_unit[:2]}"
        lines.append(
            f"{r.algorithm:<12} {r.graph:<10} {r.kind:<10} {r.engine:<10} "
            f"{r.faults:>6} {r.detections:>6} {r.repair_epochs:>6} "
            f"{error:>10} {overhead:>12} {status:<10}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"convergence {campaign.convergence_rate:.0%}  "
        f"recovery {campaign.recovery_rate:.0%}  "
        f"faults {campaign.total_faults}"
    )
    return "\n".join(lines)
