"""Periodic checkpoints of vertex state + queue occupancy, with rollback.

A checkpoint captures everything needed to restart an event-driven run
mid-flight: a copy of the vertex state array and a snapshot of the
coalescing queue's pending events (raw bin entries, *not* the merged
view — an un-merged corrupted payload must survive the round trip so
the parity check still sees it after a rollback).

Checkpoints are cheap at simulation scale (one ``ndarray.copy`` plus a
list of event tuples), so the manager keeps the last ``keep`` of them
and rollback restores the newest one.  Rollback is the heavy hammer of
the recovery ladder — repair epochs fix localized corruption in place;
rollback is for when repair budgets are exhausted and the engine needs
a known-good restart point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

import numpy as np

from ..obs import probe
from ..obs import trace as obs_trace

__all__ = ["Checkpoint", "CheckpointManager"]


@dataclass
class Checkpoint:
    """One captured restart point."""

    index: int  #: monotone checkpoint sequence number
    round_index: int  #: engine round at capture time
    at: float  #: engine time (cycles or rounds) of the capture
    state: np.ndarray  #: private copy of the vertex state array
    queue_snapshot: Any  #: opaque queue snapshot (``CoalescingQueue.snapshot``)
    pending_events: int  #: queue occupancy at capture (reporting)


class CheckpointManager:
    """Takes checkpoints every ``interval`` rounds and replays the latest.

    ``interval=None`` disables periodic capture entirely (the default:
    checkpointing must not perturb fault-free runs unless asked for).
    """

    def __init__(self, interval: Optional[int], *, keep: int = 2):
        if interval is not None and interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        if keep <= 0:
            raise ValueError("must keep at least one checkpoint")
        self.interval = interval
        self.keep = keep
        self.checkpoints: List[Checkpoint] = []
        self.taken = 0
        self.rollbacks = 0

    def due(self, round_index: int) -> bool:
        """True when a checkpoint should be captured after this round."""
        return (
            self.interval is not None
            and round_index > 0
            and round_index % self.interval == 0
        )

    def take(
        self,
        round_index: int,
        at: float,
        state: np.ndarray,
        queue_snapshot: Any,
        pending_events: int,
    ) -> Checkpoint:
        """Capture a checkpoint (caller has already snapshot the queue)."""
        checkpoint = Checkpoint(
            index=self.taken,
            round_index=round_index,
            at=at,
            state=np.array(state, copy=True),
            queue_snapshot=queue_snapshot,
            pending_events=pending_events,
        )
        self.taken += 1
        self.checkpoints.append(checkpoint)
        del self.checkpoints[: -self.keep]
        self._persist(checkpoint)
        if obs_trace.ACTIVE is not None:
            probe.checkpoint_taken(
                checkpoint.index,
                at,
                vertices=int(state.shape[0]),
                pending=pending_events,
            )
        return checkpoint

    def _persist(self, checkpoint: Checkpoint) -> None:
        """Durability hook: the base manager keeps checkpoints in memory
        only; :class:`repro.resilience.durable.DurableCheckpointManager`
        overrides this to serialize the capture to disk."""

    @property
    def latest(self) -> Optional[Checkpoint]:
        return self.checkpoints[-1] if self.checkpoints else None

    def rollback(self) -> Optional[Checkpoint]:
        """Return the newest checkpoint for restoration, counting the use.

        The checkpoint stays available (a second fault shortly after the
        restore can roll back to the same point).  Returns ``None`` when
        no checkpoint was ever captured — the caller falls back to the
        repair path.
        """
        checkpoint = self.latest
        if checkpoint is not None:
            self.rollbacks += 1
        return checkpoint
