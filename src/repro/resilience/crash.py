"""Crash-injection harness: kill real runs, resume them, verify bits.

This is the durability layer's end-to-end proof.  Everything in
:mod:`repro.resilience.durable` is exercised in-process by the unit
tests, but the core promise — *kill the process at any round, resume,
get bit-identical final vertex state and the same convergence round* —
can only be demonstrated on an actual process death.  The harness runs
the CLI in subprocesses:

1. an uninterrupted **reference** run dumps its final values
   (``--dump-values``, raw float64 bits) and its run summary;
2. a **victim** run with ``--checkpoint-dir`` is SIGKILLed from inside
   the engine (``REPRO_CRASH_AT_ROUND=N`` in its environment — a hard
   death on a round boundary, like power loss mid-campaign);
3. ``repro resume <run-dir>`` continues the victim to convergence and
   dumps its values;
4. the trial passes iff the resumed value file is **byte-identical** to
   the reference and the resumed summary reports the same convergence
   round.

Beyond process death, a trial can also damage the dead run's storage
before resuming (``storage_fault``): post-mortem bit rot or a torn
truncation of the newest checkpoint generation (forcing the resume
fallback ladder one generation back) or a torn journal tail.  Faults
come from :mod:`repro.resilience.storagefaults` and are seeded, so a
campaign replays byte-for-byte.

``run_crash_campaign`` sweeps trials over algorithms x engines with
deterministically drawn crash rounds *and* storage faults from
:data:`DEFAULT_FAULT_MIX`, reporting recovery-rate curves by kill round
and by fault kind (the EXPERIMENTS.md recovery-rate study); the CI
smoke jobs and the tier-2 crash tests run single
:func:`run_crash_trial` cells.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .storagefaults import inject_storage_fault

__all__ = [
    "CrashTrial",
    "CrashCampaignResult",
    "DEFAULT_FAULT_MIX",
    "repro_command",
    "run_crash_trial",
    "run_crash_campaign",
    "format_crash_report",
]

#: the campaign's default storage-fault mix: one fault-free control per
#: draw plus every post-mortem corruption kind the resume ladder must
#: absorb (see :func:`repro.resilience.storagefaults.inject_storage_fault`)
DEFAULT_FAULT_MIX: Tuple[Optional[str], ...] = (
    None,
    "ckpt-bitrot",
    "ckpt-torn",
    "journal-tail",
)


def repro_command(*args: str) -> List[str]:
    """A ``python -m repro ...`` argv for the current interpreter."""
    return [sys.executable, "-m", "repro", *args]


def _subprocess_env(extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """Child environment whose PYTHONPATH can import this very package."""
    import repro

    package_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    previous = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{package_root}{os.pathsep}{previous}" if previous else package_root
    )
    env.pop("REPRO_CRASH_AT_ROUND", None)
    env.pop("REPRO_SIGINT_AT_ROUND", None)
    if extra:
        env.update(extra)
    return env


def _run_cli(
    args: Sequence[str],
    *,
    extra_env: Optional[Dict[str, str]] = None,
    timeout: float = 300.0,
) -> subprocess.CompletedProcess:
    return subprocess.run(
        repro_command(*args),
        env=_subprocess_env(extra_env),
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@dataclass
class CrashTrial:
    """One kill-and-resume cell."""

    algorithm: str
    engine: str
    dataset: str
    scale: float
    crash_round: int
    #: the victim actually died to SIGKILL (False: it converged first,
    #: which makes the trial a plain determinism check)
    crashed: bool = False
    resume_returncode: Optional[int] = None
    bit_identical: bool = False
    rounds_match: bool = False
    reference_rounds: Optional[int] = None
    resumed_rounds: Optional[int] = None
    resumed_from_checkpoint: Optional[int] = None
    #: post-mortem storage fault injected between kill and resume
    storage_fault: Optional[str] = None
    #: what the injection actually damaged (None: nothing to damage)
    fault_detail: Optional[Dict[str, Any]] = None
    #: the resume fell back past >= 1 corrupt checkpoint generation
    fallback: bool = False
    checkpoints_skipped: int = 0
    error: Optional[str] = None

    @property
    def recovered(self) -> bool:
        return (
            self.resume_returncode == 0
            and self.bit_identical
            and self.rounds_match
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "engine": self.engine,
            "dataset": self.dataset,
            "scale": self.scale,
            "crash_round": self.crash_round,
            "crashed": self.crashed,
            "resume_returncode": self.resume_returncode,
            "bit_identical": self.bit_identical,
            "rounds_match": self.rounds_match,
            "reference_rounds": self.reference_rounds,
            "resumed_rounds": self.resumed_rounds,
            "resumed_from_checkpoint": self.resumed_from_checkpoint,
            "storage_fault": self.storage_fault,
            "fault_detail": self.fault_detail,
            "fallback": self.fallback,
            "checkpoints_skipped": self.checkpoints_skipped,
            "recovered": self.recovered,
            "error": self.error,
        }


def _round_key(engine: str) -> str:
    """The summary counter that defines the convergence round."""
    return "passes" if engine in ("sliced", "sliced-mp") else "rounds"


def _engine_args(engine: str) -> List[str]:
    args = ["--engine", engine]
    if engine == "sliced":
        args += ["--num-slices", "2"]
    elif engine == "sliced-mp":
        args += ["--num-slices", "2", "--workers", "2"]
    return args


def run_crash_trial(
    algorithm: str,
    engine: str,
    *,
    dataset: str = "WG",
    scale: float = 0.05,
    crash_round: int = 7,
    checkpoint_interval: int = 3,
    work_dir: Path,
    reference: Optional[Tuple[Path, Dict[str, Any]]] = None,
    storage_fault: Optional[str] = None,
    fault_seed: int = 0,
) -> CrashTrial:
    """Kill one run at ``crash_round``, resume it, compare to reference.

    ``reference`` reuses an earlier trial's uninterrupted run (values
    file + summary) so a sweep pays for each workload's reference once.
    ``storage_fault`` names a post-mortem corruption (one of
    :data:`repro.resilience.storagefaults` run-dir fault kinds) applied
    between the kill and the resume, so the trial also exercises the
    checkpoint-generation fallback and journal torn-tail recovery.
    """
    trial = CrashTrial(
        algorithm=algorithm,
        engine=engine,
        dataset=dataset,
        scale=scale,
        crash_round=crash_round,
        storage_fault=storage_fault,
    )
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    workload = [
        algorithm,
        "--dataset",
        dataset,
        "--scale",
        str(scale),
        *_engine_args(engine),
    ]

    # 1. uninterrupted reference (no --checkpoint-dir: also proves the
    #    durable machinery is zero-overhead when off)
    if reference is None:
        ref_values = work_dir / "reference.npy"
        proc = _run_cli(
            ["run", *workload, "--dump-values", str(ref_values), "--json", "-"]
        )
        if proc.returncode != 0:
            trial.error = f"reference run failed: {proc.stderr.strip()}"
            return trial
        ref_summary = json.loads(proc.stdout)
    else:
        ref_values, ref_summary = reference
    trial.reference_rounds = ref_summary["result"][_round_key(engine)]

    # 2. the victim: SIGKILLed from inside the engine at crash_round.
    # A campaign cell can draw the same crash round twice; each trial
    # still needs a virgin run dir (a durable dir refuses reuse).
    run_dir = work_dir / f"run-{algorithm}-{engine}-r{crash_round}"
    attempt = 1
    while run_dir.exists():
        run_dir = work_dir / f"run-{algorithm}-{engine}-r{crash_round}-{attempt}"
        attempt += 1
    proc = _run_cli(
        [
            "run",
            *workload,
            "--checkpoint-dir",
            str(run_dir),
            "--checkpoint-interval",
            str(checkpoint_interval),
        ],
        extra_env={"REPRO_CRASH_AT_ROUND": str(crash_round)},
    )
    trial.crashed = proc.returncode == -signal.SIGKILL
    if not trial.crashed and proc.returncode != 0:
        trial.error = f"victim run failed: {proc.stderr.strip()}"
        return trial

    # 2b. optional post-mortem storage damage: corrupt what the victim
    #     left on disk before the resume ever sees it
    if storage_fault is not None:
        trial.fault_detail = inject_storage_fault(
            run_dir, kind=storage_fault, seed=fault_seed
        )

    # 3. resume to convergence
    resumed_values = run_dir / "resumed.npy"
    proc = _run_cli(
        [
            "resume",
            str(run_dir),
            "--dump-values",
            str(resumed_values),
            "--json",
            "-",
        ]
    )
    trial.resume_returncode = proc.returncode
    if proc.returncode != 0:
        trial.error = f"resume failed: {proc.stderr.strip()}"
        return trial
    resumed_summary = json.loads(proc.stdout)
    trial.resumed_from_checkpoint = resumed_summary["resumed"]["checkpoint"]
    trial.fallback = bool(resumed_summary["resumed"].get("fallback"))
    trial.checkpoints_skipped = len(
        resumed_summary["resumed"].get("checkpoints_skipped") or []
    )
    trial.resumed_rounds = resumed_summary["result"][_round_key(engine)]
    trial.rounds_match = trial.resumed_rounds == trial.reference_rounds

    # 4. byte-for-byte equality of the final vertex state
    trial.bit_identical = (
        Path(ref_values).read_bytes() == resumed_values.read_bytes()
    )
    if not trial.bit_identical:
        reference_array = np.load(ref_values)
        resumed_array = np.load(resumed_values)
        differing = int(
            np.sum(
                reference_array.view(np.int64)
                != resumed_array.view(np.int64)
            )
        )
        trial.error = f"{differing} vertex values differ bitwise"
    return trial


@dataclass
class CrashCampaignResult:
    """A sweep of crash trials plus its scoreboard."""

    trials: List[CrashTrial] = field(default_factory=list)

    @property
    def kill_count(self) -> int:
        return sum(1 for t in self.trials if t.crashed)

    @property
    def recovery_rate(self) -> float:
        if not self.trials:
            return 1.0
        return sum(1 for t in self.trials if t.recovered) / len(self.trials)

    @staticmethod
    def _rate(trials: Sequence[CrashTrial]) -> Dict[str, Any]:
        recovered = sum(1 for t in trials if t.recovered)
        return {
            "trials": len(trials),
            "recovered": recovered,
            "rate": recovered / len(trials) if trials else 1.0,
        }

    def recovery_by_round(self) -> Dict[int, Dict[str, Any]]:
        """Recovery-rate curve over the kill round."""
        rounds = sorted({t.crash_round for t in self.trials})
        return {
            r: self._rate([t for t in self.trials if t.crash_round == r])
            for r in rounds
        }

    def recovery_by_fault(self) -> Dict[str, Dict[str, Any]]:
        """Recovery-rate curve over the injected storage-fault kind."""
        kinds = sorted(
            {t.storage_fault or "none" for t in self.trials}
        )
        return {
            k: self._rate(
                [
                    t
                    for t in self.trials
                    if (t.storage_fault or "none") == k
                ]
            )
            for k in kinds
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trials": [t.to_dict() for t in self.trials],
            "kills": self.kill_count,
            "recovery_rate": self.recovery_rate,
            "recovery_by_round": {
                str(r): cell for r, cell in self.recovery_by_round().items()
            },
            "recovery_by_fault": self.recovery_by_fault(),
        }


def run_crash_campaign(
    *,
    algorithms: Sequence[str] = ("pagerank", "sssp"),
    engines: Sequence[str] = ("functional", "cycle", "sliced"),
    dataset: str = "WG",
    scale: float = 0.05,
    trials_per_cell: int = 1,
    max_crash_round: int = 12,
    checkpoint_interval: int = 3,
    storage_faults: Sequence[Optional[str]] = DEFAULT_FAULT_MIX,
    seed: int = 0,
    work_dir: Path,
) -> CrashCampaignResult:
    """Sweep kill-and-resume trials over algorithms x engines.

    Crash rounds and storage faults are drawn from a seeded generator,
    so a campaign is as reproducible as everything else in the
    repository.  Each trial draws one entry from ``storage_faults``
    (``None`` entries are fault-free controls); pass ``(None,)`` for a
    pure kill/resume sweep.  Each workload's uninterrupted reference
    run happens once and is shared across that cell's trials.
    """
    rng = np.random.default_rng(seed)
    campaign = CrashCampaignResult()
    work_dir = Path(work_dir)
    for algorithm in algorithms:
        for engine in engines:
            cell_dir = work_dir / f"{algorithm}-{engine}"
            reference: Optional[Tuple[Path, Dict[str, Any]]] = None
            for _ in range(trials_per_cell):
                crash_round = int(rng.integers(1, max_crash_round + 1))
                fault = storage_faults[
                    int(rng.integers(0, len(storage_faults)))
                ]
                fault_seed = int(rng.integers(0, 2**31))
                trial = run_crash_trial(
                    algorithm,
                    engine,
                    dataset=dataset,
                    scale=scale,
                    crash_round=crash_round,
                    checkpoint_interval=checkpoint_interval,
                    work_dir=cell_dir,
                    reference=reference,
                    storage_fault=fault,
                    fault_seed=fault_seed,
                )
                campaign.trials.append(trial)
                if trial.error is None and reference is None:
                    reference = (
                        cell_dir / "reference.npy",
                        {
                            "result": {
                                _round_key(engine): trial.reference_rounds
                            }
                        },
                    )
    return campaign


def format_crash_report(campaign: CrashCampaignResult) -> str:
    """The EXPERIMENTS.md recovery-rate table."""
    from ..analysis.report import format_table

    rows = []
    for trial in campaign.trials:
        rows.append(
            [
                trial.algorithm,
                trial.engine,
                trial.crash_round,
                "killed" if trial.crashed else "survived",
                trial.storage_fault or "-",
                trial.resumed_from_checkpoint
                if trial.resumed_from_checkpoint is not None
                else "-",
                "yes" if trial.fallback else "-",
                "yes" if trial.bit_identical else "NO",
                "yes" if trial.rounds_match else "NO",
                "OK" if trial.recovered else (trial.error or "FAILED"),
            ]
        )
    table = format_table(
        [
            "algorithm",
            "engine",
            "crash@",
            "fate",
            "fault",
            "resume ckpt",
            "fell back",
            "bit-identical",
            "round match",
            "verdict",
        ],
        rows,
        title="crash-resume campaign",
    )
    curves = []
    by_round = campaign.recovery_by_round()
    if by_round:
        curve = "  ".join(
            f"r{r}: {cell['recovered']}/{cell['trials']}"
            for r, cell in by_round.items()
        )
        curves.append(f"recovery by kill round:   {curve}")
    by_fault = campaign.recovery_by_fault()
    if by_fault:
        curve = "  ".join(
            f"{kind}: {cell['recovered']}/{cell['trials']}"
            for kind, cell in by_fault.items()
        )
        curves.append(f"recovery by storage fault: {curve}")
    tail = "\n".join(curves)
    return (
        f"{table}\n"
        f"kills: {campaign.kill_count}/{len(campaign.trials)}   "
        f"recovery rate: {campaign.recovery_rate:.0%}"
        + (f"\n{tail}" if tail else "")
    )
