"""Deterministic storage-fault injection for the durable stack.

PR 3 made execution crash-consistent under *process* death; this module
is the adversary for the other half of the failure model: the storage
the durable layer writes to.  A :class:`StorageFaultInjector` installs
as the global IO shim (:func:`repro.ioutil.set_io_shim`) and is
consulted at the few choke points every persisted byte flows through —
checkpoint/manifest publishes (``atomic_open``), journal commit appends
(:meth:`SpillJournal.commit`), lease creates and heartbeats — so a
seeded :class:`StorageFaultPlan` can reproduce, byte for byte:

``torn``
    truncate the payload mid-record at a chosen (or seeded) offset, so
    the CRC32/length framing of GPCK checkpoints and GPJL journal
    records fires on the next read;
``bitrot``
    flip bytes *after* the write is staged, the silent-corruption case
    checksums exist for;
``readrot``
    flip bytes on the *read* path (:func:`repro.ioutil.read_bytes`):
    the disk image stays intact but the consumer receives damaged
    bytes — a bad controller, cable or cache line.  Read ops count
    separately from write ops, so a readrot ``op_index`` indexes
    matching loads;
``correlated``
    one firing damages *every* existing file matching ``path_glob`` in
    the triggering path's directory (plus the staged payload itself) —
    the shared-medium failure a single-file fault can never model, and
    the case that defeats single-generation redundancy;
``eio`` / ``enospc``
    transient ``OSError`` raised *before* the underlying syscall (so a
    bounded retry never duplicates bytes), failing ``times`` consecutive
    attempts.  An ``enospc`` whose ``times`` outlasts the retry budget
    is *persistent* disk-full: :func:`retry_transient` then raises the
    typed :class:`repro.errors.OutOfSpaceError` instead of a generic
    ``OSError``;
``crash``
    SIGKILL the process at the fault point — crash-before-rename when it
    lands on a publish hook.

Faults are scripted per operation: each op counts the IO operations
whose path matches its ``path_glob`` and fires at ``op_index`` — the
same plan against the same run is the same corruption, which is what
makes the recovery tests and the crash campaign reproducible.

The module also hosts the two recovery-side utilities the rest of the
stack shares: :func:`retry_transient`, the *bounded* exponential-backoff
retry loop (the RES-002 lint rule exists to keep every IO retry in
``resilience/`` shaped like it), and the post-mortem corruption helpers
(:func:`corrupt_file` / :func:`inject_storage_fault`) the crash campaign
uses to damage a dead run's newest artifacts between kill and resume.
"""

from __future__ import annotations

import contextlib
import errno as _errno
import json
import os
import signal
import time
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import OutOfSpaceError, ReproError
from .. import ioutil

__all__ = [
    "STORAGE_FAULT_KINDS",
    "TRANSIENT_ERRNOS",
    "RETRY_ATTEMPTS",
    "ENV_STORAGE_FAULTS",
    "StorageFaultOp",
    "StorageFaultPlan",
    "StorageFaultInjector",
    "install",
    "uninstall",
    "injecting",
    "install_from_env",
    "retry_transient",
    "corrupt_file",
    "inject_storage_fault",
]

#: the fault vocabulary (module docs)
STORAGE_FAULT_KINDS = (
    "torn",
    "bitrot",
    "readrot",
    "correlated",
    "eio",
    "enospc",
    "crash",
)

#: errno values treated as transient (worth a bounded retry)
TRANSIENT_ERRNOS = (_errno.EIO, _errno.ENOSPC, _errno.EAGAIN)

#: default attempt budget of :func:`retry_transient`
RETRY_ATTEMPTS = 5

#: env var carrying a JSON :class:`StorageFaultPlan` — the CLI installs
#: it at startup so subprocess harnesses (crash campaign, CI chaos job)
#: can inject faults into a victim run without code changes
ENV_STORAGE_FAULTS = "REPRO_STORAGE_FAULTS"

_ERRNO_BY_KIND = {"eio": _errno.EIO, "enospc": _errno.ENOSPC}


# ----------------------------------------------------------------------
# Bounded retry (the recovery side)
# ----------------------------------------------------------------------


def retry_transient(
    operation: Callable[[], Any],
    *,
    attempts: int = RETRY_ATTEMPTS,
    base_delay: float = 0.002,
    sleep: Callable[[float], None] = time.sleep,
    description: str = "io operation",
) -> Any:
    """Run ``operation`` with bounded exponential-backoff retry.

    Only the transient errno family (:data:`TRANSIENT_ERRNOS`) is
    retried; every other ``OSError`` — ``FileNotFoundError``,
    ``FileExistsError`` (a *lost* lease race must not be retried into a
    stolen lease), permission errors — propagates immediately.  The
    attempt budget is deliberate: an unbounded ``while True`` here would
    wedge a heartbeat thread on a dead disk, which is exactly what lint
    rule RES-002 guards against.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    last: Optional[OSError] = None
    for attempt in range(attempts):
        try:
            return operation()
        except OutOfSpaceError:
            raise  # already classified persistent by an inner retry
        except OSError as exc:
            if exc.errno not in TRANSIENT_ERRNOS:
                raise
            last = exc
            if attempt + 1 < attempts:
                sleep(base_delay * (2.0 ** attempt))
    if last is not None and last.errno == _errno.ENOSPC:
        # every attempt hit ENOSPC: the disk is *full*, not flaky —
        # surface the one storage failure an operator can act on as its
        # typed error (the CLI turns it into an exit-2 --json payload)
        raise OutOfSpaceError(
            f"{description}: storage persistently out of space after "
            f"{attempts} attempts: {last}",
            description=description,
            attempts=attempts,
            path=getattr(last, "filename", None),
        )
    raise OSError(
        last.errno if last is not None else _errno.EIO,
        f"{description}: still failing after {attempts} attempts: {last}",
    )


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StorageFaultOp:
    """One scripted fault: *which* operation to hit and *how*.

    ``path_glob`` fnmatches the target's basename (or full path);
    ``op_index`` selects the N-th matching IO operation (0-based, each
    op counts independently); transient kinds fail ``times``
    consecutive matching operations starting at ``op_index``.
    ``offset``/``nbytes`` pin torn/bitrot damage to exact bytes —
    ``offset=None`` draws a seeded offset from the plan's RNG.
    """

    kind: str
    path_glob: str = "*"
    op_index: int = 0
    times: int = 1
    offset: Optional[int] = None
    nbytes: int = 1

    def __post_init__(self) -> None:
        if self.kind not in STORAGE_FAULT_KINDS:
            raise ReproError(
                f"unknown storage fault kind {self.kind!r}; expected one "
                f"of {', '.join(STORAGE_FAULT_KINDS)}"
            )
        if self.times < 1:
            raise ReproError("storage fault 'times' must be >= 1")

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "path_glob": self.path_glob,
            "op_index": self.op_index,
            "times": self.times,
            "offset": self.offset,
            "nbytes": self.nbytes,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "StorageFaultOp":
        known = {"kind", "path_glob", "op_index", "times", "offset", "nbytes"}
        extra = sorted(set(payload) - known)
        if extra:
            raise ReproError(
                f"storage fault op has unknown key(s): {', '.join(extra)}"
            )
        if "kind" not in payload:
            raise ReproError("storage fault op needs a 'kind'")
        return cls(**payload)


@dataclass(frozen=True)
class StorageFaultPlan:
    """A seeded, ordered set of :class:`StorageFaultOp` — the full
    description of one storage-chaos scenario, JSON round-trippable so
    it can ride the :data:`ENV_STORAGE_FAULTS` env var into a victim
    subprocess."""

    ops: Tuple[StorageFaultOp, ...] = ()
    seed: int = 0

    def to_json(self) -> Dict[str, Any]:
        return {"seed": self.seed, "ops": [op.to_json() for op in self.ops]}

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "StorageFaultPlan":
        if not isinstance(payload, dict):
            raise ReproError("storage fault plan must be a JSON object")
        ops = payload.get("ops", [])
        if not isinstance(ops, list):
            raise ReproError("storage fault plan 'ops' must be a list")
        return cls(
            ops=tuple(StorageFaultOp.from_json(dict(op)) for op in ops),
            seed=int(payload.get("seed", 0)),
        )


# ----------------------------------------------------------------------
# The injector (the IO shim)
# ----------------------------------------------------------------------


class StorageFaultInjector:
    """The installable IO shim executing a :class:`StorageFaultPlan`.

    One instance owns one seeded RNG and per-op match counters, so the
    same plan replayed against the same run corrupts the same bytes.
    ``injected`` records every fault that actually fired (kind, site,
    path, offsets) for assertions and campaign artifacts.
    """

    def __init__(self, plan: StorageFaultPlan):
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self._seen: Dict[int, int] = {}
        self.operations = 0
        self.injected: List[Dict[str, Any]] = []

    # -- shim protocol -------------------------------------------------

    def on_publish(self, tmp_path: str, final_path: str) -> None:
        """atomic_open hook: damage the staged temp file or fail the
        publish (the destination is still the old complete version)."""
        for op in self._due(final_path):
            self._fire(op, site="publish", path=final_path, mutate=tmp_path)

    def on_publish_bytes(self, path: os.PathLike, data: bytes) -> bytes:
        """Interface-boundary publish hook for byte-backed substrate
        backends: the in-memory backend routes every atomic publish
        (lease payload, checkpoint blob, manifest) through here at a
        *virtual* path whose basename matches the fs artifact exactly,
        so the same plan chaos-tests both backends identically.  Shares
        the write-site op counters with :meth:`on_publish` — a plan
        written against fs publish ops fires at the same ``op_index``
        against the memory backend."""
        for op in self._due(path):
            damaged = self._fire(op, site="publish", path=path, payload=data)
            if damaged is not None:
                data = damaged
        return data

    def on_append(self, path: os.PathLike, data: bytes) -> bytes:
        """Journal-commit hook: may truncate/flip the record batch about
        to be appended, or raise a transient error before any byte is
        written (so the caller's bounded retry is safe)."""
        for op in self._due(path):
            data = self._fire(op, site="append", path=path, payload=data)
        return data

    def on_create(self, path: os.PathLike) -> None:
        """exclusive_create hook (lease acquisition)."""
        for op in self._due(path):
            self._fire(op, site="create", path=path)

    def on_utime(self, path: os.PathLike) -> None:
        """Lease-heartbeat hook."""
        for op in self._due(path):
            self._fire(op, site="utime", path=path)

    def on_read(self, path: os.PathLike, data: bytes) -> bytes:
        """Load hook (:func:`repro.ioutil.read_bytes`): damage the bytes
        *delivered to the consumer* — the on-disk file stays intact, so
        a retry or a different reader may still see good data."""
        for op in self._due(path, read=True):
            data = self._fire(op, site="read", path=path, payload=data)
        return data

    # -- mechanics -----------------------------------------------------

    def _due(
        self, path: os.PathLike, *, read: bool = False
    ) -> List[StorageFaultOp]:
        self.operations += 1
        name = os.path.basename(os.fspath(path))
        full = os.fspath(path)
        due: List[StorageFaultOp] = []
        for index, op in enumerate(self.plan.ops):
            # readrot ops count (and fire) only on the read path; every
            # other kind only on the write/heartbeat path — so adding
            # read instrumentation never shifts a write op's op_index
            if (op.kind == "readrot") != read:
                continue
            if not (fnmatch(name, op.path_glob) or fnmatch(full, op.path_glob)):
                continue
            seen = self._seen.get(index, 0)
            self._seen[index] = seen + 1
            if op.op_index <= seen < op.op_index + op.times:
                due.append(op)
        return due

    def _fire(
        self,
        op: StorageFaultOp,
        *,
        site: str,
        path: os.PathLike,
        mutate: Optional[str] = None,
        payload: Optional[bytes] = None,
    ) -> Optional[bytes]:
        record: Dict[str, Any] = {
            "kind": op.kind,
            "site": site,
            "path": os.fspath(path),
        }
        if op.kind in ("eio", "enospc"):
            self.injected.append(record)
            raise OSError(
                _ERRNO_BY_KIND[op.kind],
                f"injected transient {op.kind} ({site} of {path})",
            )
        if op.kind == "crash":
            self.injected.append(record)
            os.kill(os.getpid(), signal.SIGKILL)
            raise RuntimeError("unreachable: SIGKILL returned")
        if op.kind == "correlated":
            record["files"] = self._damage_correlated(op, path, mutate)
            if payload is not None:
                damaged, detail = self._damage_bytes(op, payload)
                record.update(detail)
                self.injected.append(record)
                return damaged
            self.injected.append(record)
            return payload
        if payload is not None:
            damaged, detail = self._damage_bytes(op, payload)
            record.update(detail)
            self.injected.append(record)
            return damaged
        if mutate is not None:
            record.update(self._damage_file(op, mutate))
            self.injected.append(record)
        return payload

    def _damage_correlated(
        self,
        op: StorageFaultOp,
        path: os.PathLike,
        mutate: Optional[str],
    ) -> List[Dict[str, Any]]:
        """Bit-rot every existing sibling matching the op's glob.

        Models a shared-medium failure (controller cache flush gone
        wrong, a dying flash block striped across files): the staged
        temp file *and* all previously published matching artifacts in
        the same directory take damage in one event, which is the case
        that defeats keep-the-last-K redundancy one file at a time
        cannot.
        """
        files: List[Dict[str, Any]] = []
        directory = os.path.dirname(os.fspath(path)) or "."
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            names = []
        for name in names:
            target = os.path.join(directory, name)
            if mutate is not None and os.path.abspath(
                target
            ) == os.path.abspath(mutate):
                continue  # the staged temp is damaged once, below
            if not os.path.isfile(target):
                continue
            if not (
                fnmatch(name, op.path_glob) or fnmatch(target, op.path_glob)
            ):
                continue
            if os.path.getsize(target) == 0:
                continue
            detail = self._damage_file(op, target)
            detail["path"] = target
            files.append(detail)
        if mutate is not None and os.path.getsize(mutate) > 0:
            detail = self._damage_file(op, mutate)
            detail["path"] = os.fspath(path)
            detail["staged"] = True
            files.append(detail)
        return files

    def _pick_offset(self, op: StorageFaultOp, size: int) -> int:
        if op.offset is not None:
            return max(0, min(op.offset, max(size - 1, 0)))
        if size <= 1:
            return 0
        # seeded mid-file offset: skip byte 0 so a torn write is a
        # truncation, not an empty file (that case has its own test)
        return int(self._rng.integers(1, size))

    def _damage_bytes(
        self, op: StorageFaultOp, data: bytes
    ) -> Tuple[bytes, Dict[str, Any]]:
        offset = self._pick_offset(op, len(data))
        if op.kind == "torn":
            return data[:offset], {"offset": offset, "dropped": len(data) - offset}
        flipped = bytearray(data)
        end = min(len(flipped), offset + max(op.nbytes, 1))
        for i in range(offset, end):
            flipped[i] ^= 0xFF
        return bytes(flipped), {"offset": offset, "flipped": end - offset}

    def _damage_file(self, op: StorageFaultOp, path: str) -> Dict[str, Any]:
        size = os.path.getsize(path)
        offset = self._pick_offset(op, size)
        if op.kind == "torn":
            with open(path, "r+b") as handle:
                handle.truncate(offset)
                handle.flush()
                os.fsync(handle.fileno())
            return {"offset": offset, "dropped": size - offset}
        with open(path, "r+b") as handle:
            handle.seek(offset)
            chunk = bytearray(handle.read(max(op.nbytes, 1)))
            for i in range(len(chunk)):
                chunk[i] ^= 0xFF
            handle.seek(offset)
            handle.write(bytes(chunk))
            handle.flush()
            os.fsync(handle.fileno())
        return {"offset": offset, "flipped": len(chunk)}


# ----------------------------------------------------------------------
# Installation
# ----------------------------------------------------------------------


def install(
    plan: "StorageFaultPlan | StorageFaultInjector",
) -> StorageFaultInjector:
    """Install a fault plan (or a prebuilt injector) as the global IO
    shim; returns the active injector."""
    injector = (
        plan
        if isinstance(plan, StorageFaultInjector)
        else StorageFaultInjector(plan)
    )
    ioutil.set_io_shim(injector)
    return injector


def uninstall() -> None:
    """Remove any installed IO shim (fault-free IO resumes)."""
    ioutil.set_io_shim(None)


@contextlib.contextmanager
def injecting(
    plan: "StorageFaultPlan | StorageFaultInjector",
) -> Iterator[StorageFaultInjector]:
    """Scoped installation: the previous shim is restored on exit."""
    injector = (
        plan
        if isinstance(plan, StorageFaultInjector)
        else StorageFaultInjector(plan)
    )
    previous = ioutil.set_io_shim(injector)
    try:
        yield injector
    finally:
        ioutil.set_io_shim(previous)


def install_from_env(
    environ: Optional[Dict[str, str]] = None,
) -> Optional[StorageFaultInjector]:
    """Install the plan carried by :data:`ENV_STORAGE_FAULTS`, if any.

    Called once at CLI startup; a malformed plan is a typed
    :class:`ReproError` (exit 2), not a silent no-op — a chaos run that
    quietly ran fault-free would report vacuous recovery rates.
    """
    env = os.environ if environ is None else environ
    raw = env.get(ENV_STORAGE_FAULTS)
    if not raw:
        return None
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ReproError(
            f"{ENV_STORAGE_FAULTS} is not valid JSON: {exc}"
        ) from exc
    return install(StorageFaultPlan.from_json(payload))


# ----------------------------------------------------------------------
# Post-mortem corruption (the campaign side)
# ----------------------------------------------------------------------


def corrupt_file(
    path: os.PathLike,
    *,
    kind: str = "bitrot",
    seed: int = 0,
    offset: Optional[int] = None,
    nbytes: int = 4,
) -> Dict[str, Any]:
    """Damage an existing file in place (seeded), returning what was done.

    This is the *post-mortem* flavor of injection: the crash campaign
    kills a victim run, then rots or tears its newest artifacts before
    resuming — modeling corruption that happens while the process is
    down, where no IO shim could have been consulted.
    """
    if kind not in ("torn", "bitrot"):
        raise ReproError(
            f"corrupt_file supports 'torn' or 'bitrot', got {kind!r}"
        )
    op = StorageFaultOp(kind=kind, offset=offset, nbytes=nbytes)
    injector = StorageFaultInjector(StorageFaultPlan(seed=seed))
    detail = injector._damage_file(op, os.fspath(path))
    detail.update({"kind": kind, "path": os.fspath(path)})
    return detail


def inject_storage_fault(
    run_dir: os.PathLike,
    *,
    kind: str = "ckpt-bitrot",
    seed: int = 0,
) -> Optional[Dict[str, Any]]:
    """Corrupt a durable run directory's newest artifact post-mortem.

    ``kind`` targets one artifact: ``ckpt-bitrot``/``ckpt-torn`` hit the
    newest manifest-indexed checkpoint generation (forcing the resume
    fallback ladder one generation back), ``journal-tail`` appends a
    torn garbage record to the spill journal (exercising tail
    truncation on replay).  Returns the damage record, or ``None`` when
    the targeted artifact does not exist (e.g. the victim died before
    its first checkpoint) — recovery then proceeds without a fault,
    which the campaign reports honestly.
    """
    run = Path(run_dir)
    if kind in ("ckpt-bitrot", "ckpt-torn"):
        manifest_path = run / "manifest.json"
        if not manifest_path.exists():
            return None
        try:
            entries = json.loads(manifest_path.read_text()).get(
                "checkpoints", []
            )
        except (json.JSONDecodeError, OSError):
            return None
        if not entries:
            return None
        target = run / entries[-1]["file"]
        if not target.exists():
            return None
        detail = corrupt_file(
            target, kind=kind.split("-", 1)[1], seed=seed
        )
        detail["target"] = "checkpoint"
        detail["seq"] = entries[-1].get("seq")
        return detail
    if kind == "journal-tail":
        journal = run / "journal.bin"
        if not journal.exists():
            return None
        garbage = bytes(
            np.random.default_rng(seed).integers(0, 256, size=24, dtype=np.uint8)
        )
        # deliberately non-atomic: a torn tail IS the fault under test
        with open(journal, "ab") as handle:
            handle.write(b"\x01" + garbage)
            handle.flush()
            os.fsync(handle.fileno())
        return {
            "kind": "journal-tail",
            "path": str(journal),
            "target": "journal",
            "appended": 1 + len(garbage),
        }
    raise ReproError(
        f"unknown post-mortem fault kind {kind!r}; expected ckpt-bitrot, "
        f"ckpt-torn or journal-tail"
    )
