"""Progress watchdog: turn non-termination into a structured abort.

Event-driven termination (paper Section III-C) relies on deltas
shrinking below the algorithm's threshold.  A mis-configured algorithm
(oscillating propagate, threshold of zero, non-contracting weights) can
instead generate events forever, and before this module the engines
would spin to ``max_rounds`` and die with a one-line ``RuntimeError``.

The watchdog watches two signals every round:

- **round limit** — the engine's ``max_rounds`` budget ran out;
- **no progress** — the queue keeps events pending but no event has
  changed any vertex state for ``no_progress_rounds`` consecutive
  rounds (events are being processed and regenerated without effect,
  i.e. the run is livelocked rather than slow).

On abort the watchdog assembles a diagnostic naming the fullest bins
and a sample of the stuck vertices with their pending deltas, which
:class:`repro.errors.NonConvergenceError` carries to the caller.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["ProgressWatchdog", "build_diagnostic"]

#: how many stuck vertices / bins the diagnostic samples
_DIAG_VERTICES = 8
_DIAG_BINS = 4


class ProgressWatchdog:
    """Per-run watchdog state (one per engine invocation)."""

    def __init__(
        self,
        round_limit: int,
        no_progress_rounds: Optional[int] = None,
    ):
        if round_limit <= 0:
            raise ValueError("round_limit must be positive")
        if no_progress_rounds is not None and no_progress_rounds <= 0:
            raise ValueError("no_progress_rounds must be positive")
        self.round_limit = round_limit
        self.no_progress_rounds = no_progress_rounds
        self.rounds = 0
        self.stalled_rounds = 0  #: current streak of change-free rounds

    def observe_round(self, events_processed: int, state_changes: int) -> None:
        """Feed one completed round's activity into the watchdog."""
        self.rounds += 1
        if events_processed > 0 and state_changes == 0:
            self.stalled_rounds += 1
        else:
            self.stalled_rounds = 0

    def verdict(self) -> Optional[str]:
        """``"round-limit"``, ``"no-progress"``, or None to keep running."""
        if (
            self.no_progress_rounds is not None
            and self.stalled_rounds >= self.no_progress_rounds
        ):
            return "no-progress"
        if self.rounds >= self.round_limit:
            return "round-limit"
        return None


def build_diagnostic(
    engine: str,
    reason: str,
    rounds: int,
    queue: Any,
    *,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the JSON-serializable abort diagnostic from live state.

    ``queue`` is duck-typed (any object with ``num_bins``, ``occupancy``
    and ``peek_bin``) so the same builder serves the functional engine,
    the cycle model and tests with stub queues.
    """
    occupancy = int(getattr(queue, "occupancy", 0))
    per_bin: List[tuple] = []
    pending: List[tuple] = []
    num_bins = int(getattr(queue, "num_bins", 0))
    for bin_index in range(num_bins):
        events = queue.peek_bin(bin_index)
        if not events:
            continue
        per_bin.append((len(events), bin_index))
        for event in events:
            pending.append((abs(event.delta), event.vertex, event.delta))
    per_bin.sort(reverse=True)
    pending.sort(reverse=True)
    diagnostic: Dict[str, Any] = {
        "reason": reason,
        "engine": engine,
        "rounds": rounds,
        "queue_occupancy": occupancy,
        "stuck_bins": [bin_index for _, bin_index in per_bin[:_DIAG_BINS]],
        "stuck_bin_counts": {
            str(bin_index): count for count, bin_index in per_bin[:_DIAG_BINS]
        },
        "stuck_vertices": [vertex for _, vertex, _ in pending[:_DIAG_VERTICES]],
        "stuck_deltas": {
            str(vertex): delta for _, vertex, delta in pending[:_DIAG_VERTICES]
        },
    }
    if extra:
        diagnostic.update(extra)
    return diagnostic
