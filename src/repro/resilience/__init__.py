"""Resilience: fault injection, invariant watchdogs, checkpoint/recovery.

The subsystem threads through every layer of the simulated stack — the
functional engine, the cycle-accurate accelerator, the coalescing
queue, the DRAM system and the sliced runtime — behind a single
optional ``resilience=ResilienceConfig(...)`` engine argument.  See
:mod:`repro.resilience.harness` for the site-oriented API and DESIGN.md
for the fault model and the soundness argument for delta re-injection.
"""

from . import storagefaults
from .campaign import CampaignResult, RunReport, format_report, run_campaign
from .checkpoint import Checkpoint, CheckpointManager
from .crash import (
    DEFAULT_FAULT_MIX,
    CrashCampaignResult,
    CrashTrial,
    format_crash_report,
    run_crash_campaign,
    run_crash_trial,
)
from .durable import (
    DurableCheckpointManager,
    DurableCheckpointStore,
    GcReport,
    InterruptGuard,
    RestoredRun,
    ResumeOutcome,
    build_manifest,
    deserialize_checkpoint,
    gc_run_dir,
    resume_run,
    serialize_checkpoint,
    stop_requested,
)
from .faults import FAULT_KINDS, FaultInjector, FaultPlan, FaultRecord
from .harness import ResilienceConfig, ResilienceHarness
from .invariants import RepairPlan, compute_repairs, state_invalid
from .journal import JournalScan, SpillJournal
from .storagefaults import (
    STORAGE_FAULT_KINDS,
    StorageFaultInjector,
    StorageFaultOp,
    StorageFaultPlan,
    corrupt_file,
    inject_storage_fault,
    injecting,
    retry_transient,
)
from .lease import (
    DEFAULT_LEASE_TIMEOUT,
    LeaseInfo,
    SliceLease,
    break_stale,
    is_stale,
    lease_path,
    read_lease,
)
from .watchdog import ProgressWatchdog, build_diagnostic

__all__ = [
    "CrashCampaignResult",
    "CrashTrial",
    "DEFAULT_FAULT_MIX",
    "format_crash_report",
    "run_crash_campaign",
    "run_crash_trial",
    "DurableCheckpointManager",
    "DurableCheckpointStore",
    "GcReport",
    "InterruptGuard",
    "RestoredRun",
    "ResumeOutcome",
    "JournalScan",
    "SpillJournal",
    "build_manifest",
    "deserialize_checkpoint",
    "gc_run_dir",
    "resume_run",
    "serialize_checkpoint",
    "stop_requested",
    "STORAGE_FAULT_KINDS",
    "StorageFaultInjector",
    "StorageFaultOp",
    "StorageFaultPlan",
    "corrupt_file",
    "inject_storage_fault",
    "injecting",
    "retry_transient",
    "storagefaults",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRecord",
    "FaultInjector",
    "RepairPlan",
    "compute_repairs",
    "state_invalid",
    "Checkpoint",
    "CheckpointManager",
    "DEFAULT_LEASE_TIMEOUT",
    "LeaseInfo",
    "SliceLease",
    "break_stale",
    "is_stale",
    "lease_path",
    "read_lease",
    "ProgressWatchdog",
    "build_diagnostic",
    "ResilienceConfig",
    "ResilienceHarness",
    "CampaignResult",
    "RunReport",
    "run_campaign",
    "format_report",
]
