"""Write-ahead journal for inter-slice spill traffic.

The sliced engine models GraphPulse's scaled configuration (Section
IV-F): events destined for an inactive slice are spilled "to DRAM" and
injected when that slice is next activated.  The spill buffers are the
one piece of engine state that lives *outside* the coalescing queue, so
a durable checkpoint of vertex state + queue contents is not enough to
restart a sliced run — the in-flight cross-slice events would be lost.

``SpillJournal`` closes that hole with a write-ahead log:

* every spill-buffer mutation (a cross-slice event landing in a bucket,
  a slice's buffer being consumed at activation) appends a record;
* records buffer in memory and hit the disk — ``flush`` + ``fsync`` —
  only at ``commit``, which the engine calls once per pass.  A pass is
  therefore the durability unit: after a crash, replaying the journal
  up to the last commit a checkpoint references reproduces the exact
  spill buffers that existed when that checkpoint was taken.

Binary format (little-endian throughout)::

    header:  magic b"GPJL" | version u16 | num_slices u32
    record:  type u8 | payload | crc32 u32 over (type + payload)

    SPILL   (0x01): slice u32 | vertex i64 | generation i64 | delta f64
    CONSUME (0x02): slice u32
    COMMIT  (0x03): commit id i64

Each record carries its own CRC32 so replay can distinguish a torn tail
(the crash interrupted an in-progress flush — everything after the last
commit is discarded, by design) from corruption *before* the commit a
checkpoint needs, which raises
:class:`repro.errors.CheckpointCorruptError` instead of silently
replaying garbage.

Spill buckets coalesce on write (``existing.coalesced_with(new,
reduce)``), so replay needs the algorithm's reduce operator to
reproduce them — the journal records the *incoming* event, not the
merged bucket.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import BinaryIO, Callable, Dict, List, Optional, Tuple, Union

from ..errors import CheckpointCorruptError
from ..obs import probe
from ..obs import trace as obs_trace

__all__ = ["SpillJournal", "JOURNAL_MAGIC", "JOURNAL_VERSION"]

PathLike = Union[str, os.PathLike]

JOURNAL_MAGIC = b"GPJL"
JOURNAL_VERSION = 1

_HEADER = struct.Struct("<HI")  # version, num_slices
_SPILL = struct.Struct("<Iqqd")  # slice, vertex, generation, delta (raw bits)
_CONSUME = struct.Struct("<I")  # slice
_COMMIT = struct.Struct("<q")  # commit id
_CRC = struct.Struct("<I")

_TYPE_SPILL = 0x01
_TYPE_CONSUME = 0x02
_TYPE_COMMIT = 0x03

_HEADER_LEN = len(JOURNAL_MAGIC) + _HEADER.size


def _record(record_type: int, payload: bytes) -> bytes:
    body = bytes([record_type]) + payload
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


class SpillJournal:
    """Append-only WAL of spill-buffer mutations, committed per pass."""

    def __init__(self, path: Path, handle: BinaryIO, num_slices: int):
        self.path = path
        self._handle = handle
        self.num_slices = num_slices
        self._buffer: List[bytes] = []
        self.commits = 0
        self.records_flushed = 0
        self.bytes_flushed = 0

    # -- construction --------------------------------------------------

    @classmethod
    def create(cls, path: PathLike, num_slices: int) -> "SpillJournal":
        """Start a fresh journal, truncating any previous file."""
        path = Path(path)
        handle = open(path, "wb")
        handle.write(
            JOURNAL_MAGIC + _HEADER.pack(JOURNAL_VERSION, num_slices)
        )
        handle.flush()
        os.fsync(handle.fileno())
        return cls(path, handle, num_slices)

    @classmethod
    def open_append(cls, path: PathLike, num_slices: int) -> "SpillJournal":
        """Reopen an existing journal for appending (resume path).

        The caller is expected to have already replayed and truncated the
        file to its last durable commit; this just validates the header
        and positions at the end.
        """
        path = Path(path)
        with open(path, "rb") as probe_handle:
            header = probe_handle.read(_HEADER_LEN)
        _validate_header(header, path, num_slices)
        handle = open(path, "ab")
        return cls(path, handle, num_slices)

    # -- recording ------------------------------------------------------

    def spill(
        self, slice_index: int, vertex: int, generation: int, delta: float
    ) -> None:
        """Record one event landing in ``slice_index``'s spill bucket."""
        self._buffer.append(
            _record(
                _TYPE_SPILL,
                _SPILL.pack(slice_index, vertex, generation, delta),
            )
        )

    def consume(self, slice_index: int) -> None:
        """Record a slice's spill buffer being drained at activation."""
        self._buffer.append(_record(_TYPE_CONSUME, _CONSUME.pack(slice_index)))

    def reset(self, buffers: List[Dict[int, Tuple[float, int]]]) -> None:
        """Re-baseline the journal after an in-memory rollback.

        Rollback restores the spill buffers from a checkpoint snapshot
        without replaying history, which would desynchronize the log.
        Emitting a consume-all followed by the full restored contents
        keeps replay-to-commit equivalent to the live buffers.
        """
        self._buffer = []  # drop anything uncommitted from the abandoned pass
        for slice_index in range(self.num_slices):
            self.consume(slice_index)
        for slice_index, bucket in enumerate(buffers):
            for vertex, (delta, generation) in bucket.items():
                self.spill(slice_index, vertex, generation, delta)

    def discard_uncommitted(self) -> None:
        """Drop every record buffered since the last commit.

        The multi-process supervisor calls this when a worker dies
        mid-pass: the failed pass attempt's consume/spill records never
        reached disk (records only hit storage at :meth:`commit`), so
        discarding the buffer rewinds the WAL to exactly the last
        per-pass commit — the same point the in-memory rollback restores
        — and the retried pass re-records from there.  The on-disk file
        ends up byte-identical to a run that never lost a worker.
        """
        self._buffer = []

    def commit(self, commit_id: int) -> None:
        """Flush all buffered records + a commit marker to stable storage."""
        self._buffer.append(_record(_TYPE_COMMIT, _COMMIT.pack(commit_id)))
        data = b"".join(self._buffer)
        records = len(self._buffer)
        self._buffer = []
        self._handle.write(data)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.commits += 1
        self.records_flushed += records
        self.bytes_flushed += len(data)
        if obs_trace.ACTIVE is not None:
            probe.journal_flush(
                float(commit_id),
                commit=commit_id,
                records=records,
                nbytes=len(data),
            )

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()

    # -- recovery -------------------------------------------------------

    @staticmethod
    def replay(
        path: PathLike,
        num_slices: int,
        upto: Optional[int],
        reduce_fn: Callable[[float, float], float],
    ) -> Tuple[List[Dict[int, Tuple[float, int]]], int]:
        """Rebuild the spill buffers as of commit ``upto``.

        Returns ``(buffers, offset)`` where ``buffers[s]`` maps vertex to
        ``(delta, generation)`` — coalesced with ``reduce_fn`` exactly as
        the live engine coalesces bucket writes — and ``offset`` is the
        file position just past commit ``upto`` (the truncation point for
        resuming appends).  ``upto=None`` replays to the last durable
        commit found, whatever it is.

        A torn tail — a partial or CRC-failing record *after* the target
        commit — is tolerated and discarded.  Corruption at or before the
        target commit raises :class:`CheckpointCorruptError`.
        """
        path = Path(path)
        with open(path, "rb") as handle:
            data = handle.read()
        _validate_header(data[:_HEADER_LEN], path, num_slices)

        buffers: List[Dict[int, Tuple[float, int]]] = [
            {} for _ in range(num_slices)
        ]
        # replay applies mutations tentatively and re-baselines at each
        # commit marker; anything after the last commit <= upto is dropped
        committed: List[Dict[int, Tuple[float, int]]] = [
            dict(bucket) for bucket in buffers
        ]
        committed_offset = _HEADER_LEN
        reached: Optional[int] = None

        pos = _HEADER_LEN
        corrupt: Optional[CheckpointCorruptError] = None
        while pos < len(data):
            record_type = data[pos]
            if record_type == _TYPE_SPILL:
                payload_len = _SPILL.size
            elif record_type == _TYPE_CONSUME:
                payload_len = _CONSUME.size
            elif record_type == _TYPE_COMMIT:
                payload_len = _COMMIT.size
            else:
                corrupt = CheckpointCorruptError(
                    f"{path}: unknown journal record type "
                    f"0x{record_type:02x} at offset {pos}",
                    path=str(path),
                    offset=pos,
                )
                break
            end = pos + 1 + payload_len + _CRC.size
            if end > len(data):
                break  # torn tail: crash mid-flush
            body = data[pos : pos + 1 + payload_len]
            (crc,) = _CRC.unpack_from(data, pos + 1 + payload_len)
            if crc != zlib.crc32(body) & 0xFFFFFFFF:
                corrupt = CheckpointCorruptError(
                    f"{path}: journal record CRC mismatch at offset {pos}",
                    path=str(path),
                    offset=pos,
                )
                break
            payload = body[1:]
            if record_type == _TYPE_SPILL:
                slice_index, vertex, generation, delta = _SPILL.unpack(payload)
                if slice_index >= num_slices:
                    corrupt = CheckpointCorruptError(
                        f"{path}: journal names slice {slice_index} but the "
                        f"run has {num_slices}",
                        path=str(path),
                        offset=pos,
                    )
                    break
                bucket = buffers[slice_index]
                existing = bucket.get(vertex)
                if existing is None:
                    bucket[vertex] = (delta, generation)
                else:
                    bucket[vertex] = (
                        reduce_fn(existing[0], delta),
                        max(existing[1], generation),
                    )
            elif record_type == _TYPE_CONSUME:
                (slice_index,) = _CONSUME.unpack(payload)
                if slice_index >= num_slices:
                    corrupt = CheckpointCorruptError(
                        f"{path}: journal names slice {slice_index} but the "
                        f"run has {num_slices}",
                        path=str(path),
                        offset=pos,
                    )
                    break
                buffers[slice_index] = {}
            else:
                (commit_id,) = _COMMIT.unpack(payload)
                committed = [dict(bucket) for bucket in buffers]
                committed_offset = end
                reached = commit_id
                if upto is not None and commit_id >= upto:
                    break
            pos = end

        if upto is not None and (reached is None or reached < upto):
            if corrupt is not None:
                raise corrupt
            raise CheckpointCorruptError(
                f"{path}: journal ends at commit "
                f"{reached if reached is not None else '<none>'} but the "
                f"checkpoint references commit {upto}",
                path=str(path),
                last_commit=reached,
                wanted_commit=upto,
            )
        return committed, committed_offset

    @staticmethod
    def truncate(path: PathLike, offset: int) -> None:
        """Discard everything past ``offset`` (the torn tail) in place."""
        with open(path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())


def _validate_header(header: bytes, path: Path, num_slices: int) -> None:
    if len(header) < _HEADER_LEN or header[:4] != JOURNAL_MAGIC:
        raise CheckpointCorruptError(
            f"{path}: not a spill journal (bad magic)", path=str(path)
        )
    version, recorded_slices = _HEADER.unpack_from(header, 4)
    if version != JOURNAL_VERSION:
        raise CheckpointCorruptError(
            f"{path}: unsupported journal version {version} "
            f"(expected {JOURNAL_VERSION})",
            path=str(path),
            version=version,
        )
    if recorded_slices != num_slices:
        raise CheckpointCorruptError(
            f"{path}: journal was written for {recorded_slices} slices "
            f"but the run has {num_slices}",
            path=str(path),
            journal_slices=recorded_slices,
            run_slices=num_slices,
        )
