"""Write-ahead journal for inter-slice spill traffic.

The sliced engine models GraphPulse's scaled configuration (Section
IV-F): events destined for an inactive slice are spilled "to DRAM" and
injected when that slice is next activated.  The spill buffers are the
one piece of engine state that lives *outside* the coalescing queue, so
a durable checkpoint of vertex state + queue contents is not enough to
restart a sliced run — the in-flight cross-slice events would be lost.

``SpillJournal`` closes that hole with a write-ahead log:

* every spill-buffer mutation (a cross-slice event landing in a bucket,
  a slice's buffer being consumed at activation) appends a record;
* records buffer in memory and hit the disk — ``flush`` + ``fsync`` —
  only at ``commit``, which the engine calls once per pass.  A pass is
  therefore the durability unit: after a crash, replaying the journal
  up to the last commit a checkpoint references reproduces the exact
  spill buffers that existed when that checkpoint was taken.

Binary format (little-endian throughout)::

    header:  magic b"GPJL" | version u16 | num_slices u32
    record:  type u8 | payload | crc32 u32 over (type + payload)

    SPILL   (0x01): slice u32 | vertex i64 | generation i64 | delta f64
    CONSUME (0x02): slice u32
    COMMIT  (0x03): commit id i64

Each record carries its own CRC32 so replay can distinguish a torn tail
(the crash interrupted an in-progress flush — everything after the last
commit is discarded, by design) from corruption *before* the commit a
checkpoint needs, which raises
:class:`repro.errors.CheckpointCorruptError` instead of silently
replaying garbage.

Spill buckets coalesce on write (``existing.coalesced_with(new,
reduce)``), so replay needs the algorithm's reduce operator to
reproduce them — the journal records the *incoming* event, not the
merged bucket.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, Callable, Dict, List, Optional, Tuple, Union

from .. import ioutil
from ..errors import CheckpointCorruptError
from ..obs import probe
from ..obs import trace as obs_trace
from .storagefaults import retry_transient

__all__ = [
    "SpillJournal",
    "JournalScan",
    "JOURNAL_MAGIC",
    "JOURNAL_VERSION",
    "encode_header",
    "encode_spill",
    "encode_consume",
    "encode_commit",
    "scan_bytes",
    "compact_bytes",
]

PathLike = Union[str, os.PathLike]

JOURNAL_MAGIC = b"GPJL"
JOURNAL_VERSION = 1

_HEADER = struct.Struct("<HI")  # version, num_slices
_SPILL = struct.Struct("<Iqqd")  # slice, vertex, generation, delta (raw bits)
_CONSUME = struct.Struct("<I")  # slice
_COMMIT = struct.Struct("<q")  # commit id
_CRC = struct.Struct("<I")

_TYPE_SPILL = 0x01
_TYPE_CONSUME = 0x02
_TYPE_COMMIT = 0x03

_HEADER_LEN = len(JOURNAL_MAGIC) + _HEADER.size


def _record(record_type: int, payload: bytes) -> bytes:
    body = bytes([record_type]) + payload
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


# -- byte-level codec -------------------------------------------------
# The GPJL wire format is shared verbatim by every spill transport
# backend (filesystem journal file, in-memory byte log), so torn-tail
# and CRC semantics are provably identical across backends: they all
# encode with these helpers and decode with :func:`scan_bytes`.


def encode_header(num_slices: int) -> bytes:
    """The GPJL file header for a ``num_slices``-slice journal."""
    return JOURNAL_MAGIC + _HEADER.pack(JOURNAL_VERSION, num_slices)


def encode_spill(
    slice_index: int, vertex: int, generation: int, delta: float
) -> bytes:
    """One CRC-framed SPILL record."""
    return _record(
        _TYPE_SPILL, _SPILL.pack(slice_index, vertex, generation, delta)
    )


def encode_consume(slice_index: int) -> bytes:
    """One CRC-framed CONSUME record."""
    return _record(_TYPE_CONSUME, _CONSUME.pack(slice_index))


def encode_commit(commit_id: int) -> bytes:
    """One CRC-framed COMMIT marker."""
    return _record(_TYPE_COMMIT, _COMMIT.pack(commit_id))


_PAYLOAD_LEN = {
    _TYPE_SPILL: _SPILL.size,
    _TYPE_CONSUME: _CONSUME.size,
    _TYPE_COMMIT: _COMMIT.size,
}


def _count_tail(data: bytes, start: int) -> int:
    """Whole, CRC-valid records from ``start`` to the first anomaly.

    Used only for reporting (how many durable-but-unneeded records a
    resume truncates) — corruption here just stops the count, it is not
    an error, because everything past the adopted commit is discarded
    anyway.
    """
    count = 0
    pos = start
    while pos < len(data):
        payload_len = _PAYLOAD_LEN.get(data[pos])
        if payload_len is None:
            break
        end = pos + 1 + payload_len + _CRC.size
        if end > len(data):
            break
        body = data[pos : pos + 1 + payload_len]
        (crc,) = _CRC.unpack_from(data, pos + 1 + payload_len)
        if crc != zlib.crc32(body) & 0xFFFFFFFF:
            break
        count += 1
        pos = end
    return count


@dataclass
class JournalScan:
    """What :meth:`SpillJournal.scan` learned about one journal file.

    ``buffers``/``offset`` are the replay result (spill buckets as of
    the target commit, and the file position just past it — the
    truncation point).  The counters feed recovery provenance:
    ``records_applied`` reached the adopted commit, ``tail_records`` /
    ``tail_bytes`` sit past it and will be discarded on resume.
    """

    buffers: List[Dict[int, Tuple[float, int]]]
    offset: int
    records_applied: int
    tail_records: int
    tail_bytes: int
    last_commit: Optional[int]

    def provenance(self) -> Dict[str, Any]:
        """The ``journal`` block of ``repro resume --json``."""
        return {
            "records_replayed": self.records_applied,
            "records_discarded": self.tail_records,
            "bytes_discarded": self.tail_bytes,
            "commit": self.last_commit,
        }


def scan_bytes(
    data: bytes,
    num_slices: int,
    upto: Optional[int],
    reduce_fn: Callable[[float, float], float],
    *,
    source: str = "<journal>",
) -> JournalScan:
    """Replay a GPJL byte string up to commit ``upto``.

    The backend-neutral core of :meth:`SpillJournal.scan`: the
    filesystem journal hands it file contents, the in-memory transport
    hands it its byte log, and both get identical torn-tail tolerance,
    CRC validation and coalescing.  ``source`` only labels error
    messages (a path for the fs backend, a virtual name otherwise).
    """
    _validate_header(data[:_HEADER_LEN], source, num_slices)

    buffers: List[Dict[int, Tuple[float, int]]] = [
        {} for _ in range(num_slices)
    ]
    # replay applies mutations tentatively and re-baselines at each
    # commit marker; anything after the last commit <= upto is dropped
    committed: List[Dict[int, Tuple[float, int]]] = [
        dict(bucket) for bucket in buffers
    ]
    committed_offset = _HEADER_LEN
    reached: Optional[int] = None
    records_seen = 0
    records_committed = 0

    pos = _HEADER_LEN
    corrupt: Optional[CheckpointCorruptError] = None
    while pos < len(data):
        record_type = data[pos]
        payload_len = _PAYLOAD_LEN.get(record_type)
        if payload_len is None:
            corrupt = CheckpointCorruptError(
                f"{source}: unknown journal record type "
                f"0x{record_type:02x} at offset {pos}",
                path=source,
                offset=pos,
            )
            break
        end = pos + 1 + payload_len + _CRC.size
        if end > len(data):
            break  # torn tail: crash mid-flush
        body = data[pos : pos + 1 + payload_len]
        (crc,) = _CRC.unpack_from(data, pos + 1 + payload_len)
        if crc != zlib.crc32(body) & 0xFFFFFFFF:
            corrupt = CheckpointCorruptError(
                f"{source}: journal record CRC mismatch at offset {pos}",
                path=source,
                offset=pos,
            )
            break
        records_seen += 1
        payload = body[1:]
        if record_type == _TYPE_SPILL:
            slice_index, vertex, generation, delta = _SPILL.unpack(payload)
            if slice_index >= num_slices:
                corrupt = CheckpointCorruptError(
                    f"{source}: journal names slice {slice_index} but the "
                    f"run has {num_slices}",
                    path=source,
                    offset=pos,
                )
                break
            bucket = buffers[slice_index]
            existing = bucket.get(vertex)
            if existing is None:
                bucket[vertex] = (delta, generation)
            else:
                bucket[vertex] = (
                    reduce_fn(existing[0], delta),
                    max(existing[1], generation),
                )
        elif record_type == _TYPE_CONSUME:
            (slice_index,) = _CONSUME.unpack(payload)
            if slice_index >= num_slices:
                corrupt = CheckpointCorruptError(
                    f"{source}: journal names slice {slice_index} but the "
                    f"run has {num_slices}",
                    path=source,
                    offset=pos,
                )
                break
            buffers[slice_index] = {}
        else:
            (commit_id,) = _COMMIT.unpack(payload)
            committed = [dict(bucket) for bucket in buffers]
            committed_offset = end
            reached = commit_id
            records_committed = records_seen
            if upto is not None and commit_id >= upto:
                break
        pos = end

    if upto is not None and (reached is None or reached < upto):
        if corrupt is not None:
            raise corrupt
        raise CheckpointCorruptError(
            f"{source}: journal ends at commit "
            f"{reached if reached is not None else '<none>'} but the "
            f"checkpoint references commit {upto}",
            path=source,
            last_commit=reached,
            wanted_commit=upto,
        )
    return JournalScan(
        buffers=committed,
        offset=committed_offset,
        records_applied=records_committed,
        tail_records=_count_tail(data, committed_offset),
        tail_bytes=len(data) - committed_offset,
        last_commit=reached,
    )


def compact_bytes(
    data: bytes,
    num_slices: int,
    upto: int,
    reduce_fn: Callable[[float, float], float],
    *,
    source: str = "<journal>",
) -> Tuple[bytes, Dict[str, int]]:
    """Re-baseline a GPJL byte string at commit ``upto``.

    The backend-neutral core of :meth:`SpillJournal.compact_file`:
    history up to ``upto`` collapses into one coalesced SPILL record per
    pending bucket entry plus a ``COMMIT(upto)`` marker; everything past
    ``upto`` is preserved byte-for-byte.  Returns ``(blob, stats)`` —
    publishing the blob is the caller's (backend's) job.
    """
    scan = scan_bytes(data, num_slices, upto, reduce_fn, source=source)
    tail = data[scan.offset :]
    parts = [encode_header(num_slices)]
    baseline_records = 0
    for slice_index, bucket in enumerate(scan.buffers):
        for vertex, (delta, generation) in bucket.items():
            parts.append(
                encode_spill(slice_index, vertex, generation, delta)
            )
            baseline_records += 1
    parts.append(encode_commit(upto))
    blob = b"".join(parts) + tail
    return blob, {
        "upto": int(upto),
        "records_dropped": max(
            0, scan.records_applied - baseline_records - 1
        ),
        "baseline_records": baseline_records,
        "bytes_before": len(data),
        "bytes_after": len(blob),
    }


class SpillJournal:
    """Append-only WAL of spill-buffer mutations, committed per pass."""

    def __init__(self, path: Path, handle: BinaryIO, num_slices: int):
        self.path = path
        self._handle = handle
        self.num_slices = num_slices
        self._buffer: List[bytes] = []
        self.commits = 0
        self.records_flushed = 0
        self.bytes_flushed = 0
        # lifecycle stats (see compact()): highest commit id the log has
        # been re-baselined at, and what compaction has saved so far
        self.compacted_upto = 0
        self.compactions = 0
        self.records_dropped = 0

    # -- construction --------------------------------------------------

    @classmethod
    def create(cls, path: PathLike, num_slices: int) -> "SpillJournal":
        """Start a fresh journal, truncating any previous file."""
        path = Path(path)
        handle = open(path, "wb")
        handle.write(encode_header(num_slices))
        handle.flush()
        os.fsync(handle.fileno())
        return cls(path, handle, num_slices)

    @classmethod
    def open_append(cls, path: PathLike, num_slices: int) -> "SpillJournal":
        """Reopen an existing journal for appending (resume path).

        The caller is expected to have already replayed and truncated the
        file to its last durable commit; this just validates the header
        and positions at the end.
        """
        path = Path(path)
        with open(path, "rb") as probe_handle:
            header = probe_handle.read(_HEADER_LEN)
        _validate_header(header, path, num_slices)
        handle = open(path, "ab")
        return cls(path, handle, num_slices)

    # -- recording ------------------------------------------------------

    def spill(
        self, slice_index: int, vertex: int, generation: int, delta: float
    ) -> None:
        """Record one event landing in ``slice_index``'s spill bucket."""
        self._buffer.append(
            _record(
                _TYPE_SPILL,
                _SPILL.pack(slice_index, vertex, generation, delta),
            )
        )

    def consume(self, slice_index: int) -> None:
        """Record a slice's spill buffer being drained at activation."""
        self._buffer.append(_record(_TYPE_CONSUME, _CONSUME.pack(slice_index)))

    def reset(self, buffers: List[Dict[int, Tuple[float, int]]]) -> None:
        """Re-baseline the journal after an in-memory rollback.

        Rollback restores the spill buffers from a checkpoint snapshot
        without replaying history, which would desynchronize the log.
        Emitting a consume-all followed by the full restored contents
        keeps replay-to-commit equivalent to the live buffers.
        """
        self._buffer = []  # drop anything uncommitted from the abandoned pass
        for slice_index in range(self.num_slices):
            self.consume(slice_index)
        for slice_index, bucket in enumerate(buffers):
            for vertex, (delta, generation) in bucket.items():
                self.spill(slice_index, vertex, generation, delta)

    def discard_uncommitted(self) -> None:
        """Drop every record buffered since the last commit.

        The multi-process supervisor calls this when a worker dies
        mid-pass: the failed pass attempt's consume/spill records never
        reached disk (records only hit storage at :meth:`commit`), so
        discarding the buffer rewinds the WAL to exactly the last
        per-pass commit — the same point the in-memory rollback restores
        — and the retried pass re-records from there.  The on-disk file
        ends up byte-identical to a run that never lost a worker.
        """
        self._buffer = []

    def commit(self, commit_id: int) -> None:
        """Flush all buffered records + a commit marker to stable storage.

        The flush is retried with a bounded backoff for transient errno
        failures (``EIO``/``ENOSPC``): the storage-fault shim raises its
        injected transients *before* any byte reaches the file handle,
        so a retry re-attempts the whole batch rather than appending a
        duplicate — a commit either lands once or the typed error
        propagates after the attempt budget.
        """
        self._buffer.append(_record(_TYPE_COMMIT, _COMMIT.pack(commit_id)))
        data = b"".join(self._buffer)
        records = len(self._buffer)
        self._buffer = []
        written = self._flush_batch(data)
        self.commits += 1
        self.records_flushed += records
        self.bytes_flushed += len(written)
        if obs_trace.ACTIVE is not None:
            probe.journal_flush(
                float(commit_id),
                commit=commit_id,
                records=records,
                nbytes=len(written),
            )

    def _flush_batch(self, data: bytes) -> bytes:
        def attempt() -> bytes:
            out = data
            shim = ioutil.IO_SHIM
            if shim is not None:
                hook = getattr(shim, "on_append", None)
                if hook is not None:
                    out = hook(self.path, data)
            self._handle.write(out)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            return out

        return retry_transient(
            attempt, description=f"journal commit ({self.path})"
        )

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()

    # -- recovery -------------------------------------------------------

    @staticmethod
    def replay(
        path: PathLike,
        num_slices: int,
        upto: Optional[int],
        reduce_fn: Callable[[float, float], float],
    ) -> Tuple[List[Dict[int, Tuple[float, int]]], int]:
        """Rebuild the spill buffers as of commit ``upto``.

        Returns ``(buffers, offset)`` where ``buffers[s]`` maps vertex to
        ``(delta, generation)`` — coalesced with ``reduce_fn`` exactly as
        the live engine coalesces bucket writes — and ``offset`` is the
        file position just past commit ``upto`` (the truncation point for
        resuming appends).  ``upto=None`` replays to the last durable
        commit found, whatever it is.

        A torn tail — a partial or CRC-failing record *after* the target
        commit — is tolerated and discarded.  Corruption at or before the
        target commit raises :class:`CheckpointCorruptError`.
        """
        scan = SpillJournal.scan(path, num_slices, upto, reduce_fn)
        return scan.buffers, scan.offset

    @staticmethod
    def scan(
        path: PathLike,
        num_slices: int,
        upto: Optional[int],
        reduce_fn: Callable[[float, float], float],
    ) -> JournalScan:
        """:meth:`replay` plus the bookkeeping recovery provenance needs.

        Same corruption semantics as :meth:`replay`; additionally counts
        the records that reached the adopted commit and the (discarded)
        durable tail past it — see :class:`JournalScan`.
        """
        path = Path(path)
        # loads go through ioutil.read_bytes so the storage-fault shim
        # can model read-side bit rot against journal replay too
        data = ioutil.read_bytes(path)
        return scan_bytes(data, num_slices, upto, reduce_fn, source=str(path))

    @staticmethod
    def truncate(path: PathLike, offset: int) -> None:
        """Discard everything past ``offset`` (the torn tail) in place."""
        with open(path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())

    # -- lifecycle ------------------------------------------------------

    @classmethod
    def compact_file(
        cls,
        path: PathLike,
        num_slices: int,
        upto: int,
        reduce_fn: Callable[[float, float], float],
    ) -> Dict[str, int]:
        """Re-baseline the on-disk log at commit ``upto`` (closed file).

        The history up to ``upto`` collapses into one coalesced SPILL
        record per pending bucket entry plus a single ``COMMIT(upto)``
        marker; every durable record *after* ``upto`` is preserved
        byte-for-byte.  Replay to any commit ``>= upto`` is therefore
        unchanged — which is why callers must pick ``upto`` as the
        **oldest retained checkpoint generation's** commit, never the
        newest: the resume fallback ladder may still need to replay to
        an older generation, and commits below the compaction boundary
        are no longer reachable.

        Publishing is atomic (temp + fsync + rename), so a crash during
        compaction leaves the previous journal intact.
        """
        data = ioutil.read_bytes(path)
        blob, stats = compact_bytes(
            data, num_slices, upto, reduce_fn, source=str(path)
        )
        ioutil.atomic_write_bytes(path, blob)
        return stats

    def compact(
        self, upto: int, reduce_fn: Callable[[float, float], float]
    ) -> Dict[str, int]:
        """In-place :meth:`compact_file` for a live (open) journal.

        Requires a clean commit boundary — the engine calls this right
        after a per-pass commit, when nothing is buffered.  The append
        handle is reopened on the freshly published file.
        """
        if self._buffer:
            raise ValueError(
                "journal compaction requires a committed boundary "
                f"({len(self._buffer)} uncommitted record(s) buffered)"
            )
        self._handle.close()
        stats = SpillJournal.compact_file(
            self.path, self.num_slices, upto, reduce_fn
        )
        self._handle = open(self.path, "ab")
        self.compacted_upto = int(upto)
        self.compactions += 1
        self.records_dropped += stats["records_dropped"]
        return stats


def _validate_header(
    header: bytes, source: Union[str, Path], num_slices: int
) -> None:
    if len(header) < _HEADER_LEN or header[:4] != JOURNAL_MAGIC:
        raise CheckpointCorruptError(
            f"{source}: not a spill journal (bad magic)", path=str(source)
        )
    version, recorded_slices = _HEADER.unpack_from(header, 4)
    if version != JOURNAL_VERSION:
        raise CheckpointCorruptError(
            f"{source}: unsupported journal version {version} "
            f"(expected {JOURNAL_VERSION})",
            path=str(source),
            version=version,
        )
    if recorded_slices != num_slices:
        raise CheckpointCorruptError(
            f"{source}: journal was written for {recorded_slices} slices "
            f"but the run has {num_slices}",
            path=str(source),
            journal_slices=recorded_slices,
            run_slices=num_slices,
        )
