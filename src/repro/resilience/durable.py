"""Durable execution: on-disk checkpoints, run manifests, and resume.

PR2's :class:`~repro.resilience.checkpoint.CheckpointManager` keeps
checkpoints in memory for rollback within one process; this module makes
the same captures survive the process.  The contract is *crash
consistency with bit-identical resume*: kill a durable run at any round,
``repro resume <run-dir>``, and the continued run reaches the exact same
final vertex state (same float64 bits) and the same convergence round an
uninterrupted run reaches.

A durable run directory contains:

``manifest.json``
    The run's identity and index, atomically rewritten after every
    checkpoint: format version, workload (algorithm / dataset / scale),
    engine and engine options, graph fingerprint
    (:func:`repro.graph.io.graph_fingerprint`), the resilience
    configuration (fault plan, checkpoint cadence), and the list of
    retained checkpoints.

``checkpoint-NNNNNN.ckpt``
    One serialized capture (format below), written with temp-file +
    ``os.replace`` so a crash mid-write never leaves a half checkpoint
    under a valid name.

``journal.bin``
    Sliced runs only: the write-ahead spill journal
    (:mod:`repro.resilience.journal`) that makes the inter-slice DRAM
    spill buffers replayable.

Checkpoint binary format (little-endian)::

    magic b"GPCK" | version u16 | header_len u32 | header JSON
    | vertex state (num_vertices f64)
    | group sizes (num_groups i64)
    | event records (num_events x {vertex i64, delta f64, generation
      i64, ready i64, parity u8})
    | crc32 u32 over everything before it

The header JSON carries the sequencing metadata (round index, engine
time, running totals, the fault-injector RNG cursor, the journal commit
the capture pairs with).  Deltas travel as raw IEEE-754 bits, so NaN
payloads and ±inf survive the round trip exactly.  Any mismatch — bad
magic, unknown version, CRC failure, truncation, inconsistent lengths —
raises :class:`repro.errors.CheckpointCorruptError`; a corrupt file is
never partially loaded.
"""

from __future__ import annotations

import json
import os
import signal
import struct
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

import numpy as np

from ..errors import CheckpointCorruptError, ManifestMismatchError, RunInterruptedError
from ..ioutil import atomic_write_bytes, read_bytes
from ..obs import probe
from ..obs import trace as obs_trace
from .checkpoint import Checkpoint, CheckpointManager
from .storagefaults import retry_transient

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "MANIFEST_VERSION",
    "serialize_checkpoint",
    "deserialize_checkpoint",
    "RestoredRun",
    "DurableCheckpointStore",
    "DurableCheckpointManager",
    "InterruptGuard",
    "stop_requested",
    "build_manifest",
    "resume_run",
    "ResumeOutcome",
    "GcReport",
    "gc_run_dir",
]

PathLike = Union[str, os.PathLike]

CHECKPOINT_MAGIC = b"GPCK"
CHECKPOINT_VERSION = 1
MANIFEST_VERSION = 1

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.bin"

_PREAMBLE = struct.Struct("<HI")  # version, header length
_CRC = struct.Struct("<I")

#: packed per-event record; delta carries raw f64 bits so NaN payloads
#: and ±inf round-trip exactly
_EVENT_DTYPE = np.dtype(
    [
        ("vertex", "<i8"),
        ("delta", "<f8"),
        ("generation", "<i8"),
        ("ready", "<i8"),
        ("parity", "u1"),
    ]
)


# ----------------------------------------------------------------------
# Queue-snapshot <-> flat-record conversion
# ----------------------------------------------------------------------
def _snapshot_records(queue_kind: str, snapshot: Any):
    """Flatten a queue snapshot into (group sizes, event records).

    ``"bins"`` snapshots are ``List[List[Event]]`` (one group per
    occupied queue slot, in slot order); ``"spill"`` snapshots are
    ``List[Dict[int, Event]]`` (one group per slice, in insertion
    order — dict order is load-bearing: it decides the replayed
    activation's insertion order, so it must survive the round trip).
    """
    from ..core.event import Event  # local: avoid a core<->resilience cycle

    groups: List[int] = []
    flat: List[Any] = []
    if queue_kind == "spill":
        for bucket in snapshot:
            groups.append(len(bucket))
            flat.extend(bucket.values())
    else:
        for entries in snapshot:
            groups.append(len(entries))
            flat.extend(entries)
    records = np.zeros(len(flat), dtype=_EVENT_DTYPE)
    for i, event in enumerate(flat):
        records[i] = (
            event.vertex,
            event.delta,
            event.generation,
            event.ready,
            1 if getattr(event, "_parity_bad", False) else 0,
        )
    return np.asarray(groups, dtype=np.int64), records


def _records_snapshot(queue_kind: str, groups: np.ndarray, records: np.ndarray):
    """Inverse of :func:`_snapshot_records`."""
    from ..core.event import Event

    snapshot: List[Any] = []
    cursor = 0
    for size in groups:
        size = int(size)
        chunk = records[cursor : cursor + size]
        cursor += size
        events = []
        for row in chunk:
            event = Event(
                vertex=int(row["vertex"]),
                delta=float(row["delta"]),
                generation=int(row["generation"]),
                ready=int(row["ready"]),
            )
            if int(row["parity"]):
                event._parity_bad = True  # type: ignore[attr-defined]
            events.append(event)
        if queue_kind == "spill":
            snapshot.append({e.vertex: e for e in events})
        else:
            snapshot.append(events)
    return snapshot


# ----------------------------------------------------------------------
# Checkpoint (de)serialization
# ----------------------------------------------------------------------
def serialize_checkpoint(
    checkpoint: Checkpoint,
    *,
    engine: str,
    algorithm: str,
    queue_kind: str,
    totals: Mapping[str, int],
    fault_cursor: Mapping[str, Any],
    journal_commit: Optional[int],
) -> bytes:
    """Encode one checkpoint into the self-verifying binary format."""
    state = np.ascontiguousarray(checkpoint.state, dtype=np.float64)
    groups, records = _snapshot_records(queue_kind, checkpoint.queue_snapshot)
    header = {
        "seq": int(checkpoint.index),
        "round_index": int(checkpoint.round_index),
        "at": float(checkpoint.at),
        "engine": engine,
        "algorithm": algorithm,
        "queue_kind": queue_kind,
        "num_vertices": int(state.shape[0]),
        "num_groups": int(groups.shape[0]),
        "num_events": int(records.shape[0]),
        "totals": {k: int(v) for k, v in totals.items()},
        "fault_cursor": dict(fault_cursor),
        "journal_commit": journal_commit,
        "pending_events": int(checkpoint.pending_events),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    body = (
        CHECKPOINT_MAGIC
        + _PREAMBLE.pack(CHECKPOINT_VERSION, len(header_bytes))
        + header_bytes
        + state.tobytes()
        + groups.tobytes()
        + records.tobytes()
    )
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


@dataclass
class RestoredRun:
    """A verified checkpoint, materialized for an engine's ``restore``."""

    seq: int
    round_index: int
    at: float
    engine: str
    algorithm: str
    queue_kind: str
    state: np.ndarray
    queue_snapshot: Any
    totals: Dict[str, int]
    fault_cursor: Dict[str, Any]
    journal_commit: Optional[int]


def deserialize_checkpoint(data: bytes, *, source: str = "<bytes>") -> RestoredRun:
    """Decode + verify a serialized checkpoint.

    Every validation failure raises
    :class:`repro.errors.CheckpointCorruptError` naming ``source``;
    nothing is ever partially restored from a file that fails its CRC.
    """

    def corrupt(message: str, **context: Any) -> CheckpointCorruptError:
        return CheckpointCorruptError(
            f"{source}: {message}", path=source, **context
        )

    floor = len(CHECKPOINT_MAGIC) + _PREAMBLE.size + _CRC.size
    if len(data) < floor:
        raise corrupt(f"truncated checkpoint ({len(data)} bytes)")
    if data[:4] != CHECKPOINT_MAGIC:
        raise corrupt("not a checkpoint file (bad magic)")
    version, header_len = _PREAMBLE.unpack_from(data, 4)
    if version != CHECKPOINT_VERSION:
        raise corrupt(
            f"unsupported checkpoint version {version} "
            f"(expected {CHECKPOINT_VERSION})",
            version=version,
        )
    body, trailer = data[: -_CRC.size], data[-_CRC.size :]
    (expected_crc,) = _CRC.unpack(trailer)
    actual_crc = zlib.crc32(body) & 0xFFFFFFFF
    if actual_crc != expected_crc:
        raise corrupt(
            f"checkpoint CRC mismatch "
            f"(stored {expected_crc:#010x}, computed {actual_crc:#010x})",
            expected_crc=expected_crc,
            actual_crc=actual_crc,
        )
    header_start = len(CHECKPOINT_MAGIC) + _PREAMBLE.size
    header_stop = header_start + header_len
    if header_stop > len(body):
        raise corrupt("header length exceeds file size")
    try:
        header = json.loads(body[header_start:header_stop].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise corrupt(f"unreadable checkpoint header ({exc})") from exc

    num_vertices = int(header.get("num_vertices", -1))
    num_groups = int(header.get("num_groups", -1))
    num_events = int(header.get("num_events", -1))
    if min(num_vertices, num_groups, num_events) < 0:
        raise corrupt("checkpoint header is missing section sizes")
    state_len = num_vertices * 8
    groups_len = num_groups * 8
    events_len = num_events * _EVENT_DTYPE.itemsize
    if header_stop + state_len + groups_len + events_len != len(body):
        raise corrupt(
            "checkpoint sections do not add up to the file size",
            expected=header_stop + state_len + groups_len + events_len,
            actual=len(body),
        )
    cursor = header_stop
    state = np.frombuffer(
        body, dtype="<f8", count=num_vertices, offset=cursor
    ).copy()
    cursor += state_len
    groups = np.frombuffer(
        body, dtype="<i8", count=num_groups, offset=cursor
    ).copy()
    cursor += groups_len
    records = np.frombuffer(
        body, dtype=_EVENT_DTYPE, count=num_events, offset=cursor
    ).copy()
    if int(groups.sum()) != num_events:
        raise corrupt(
            "group sizes disagree with the event count",
            group_total=int(groups.sum()),
            num_events=num_events,
        )
    queue_kind = header.get("queue_kind", "bins")
    return RestoredRun(
        seq=int(header["seq"]),
        round_index=int(header["round_index"]),
        at=float(header["at"]),
        engine=str(header.get("engine", "")),
        algorithm=str(header.get("algorithm", "")),
        queue_kind=queue_kind,
        state=state,
        queue_snapshot=_records_snapshot(queue_kind, groups, records),
        totals={k: int(v) for k, v in header.get("totals", {}).items()},
        fault_cursor=dict(header.get("fault_cursor", {})),
        journal_commit=header.get("journal_commit"),
    )


# ----------------------------------------------------------------------
# The run-directory store
# ----------------------------------------------------------------------
class DurableCheckpointStore:
    """One durable run directory: manifest + checkpoints (+ journal)."""

    def __init__(self, run_dir: PathLike):
        self.run_dir = Path(run_dir)
        self.manifest: Optional[Dict[str, Any]] = None

    # -- paths ----------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.run_dir / MANIFEST_NAME

    @property
    def journal_path(self) -> Path:
        return self.run_dir / JOURNAL_NAME

    def checkpoint_path(self, seq: int) -> Path:
        return self.run_dir / f"checkpoint-{seq:06d}.ckpt"

    # -- backend IO primitives ------------------------------------------
    # The five operations every piece of store logic above funnels
    # through.  The filesystem defaults below ARE the durable contract
    # (atomic publish, shim-visible reads); the in-memory substrate
    # backend overrides exactly these to get byte-identical manifest /
    # generation-ladder semantics without touching a disk.

    def _ensure_root(self) -> None:
        self.run_dir.mkdir(parents=True, exist_ok=True)

    def _exists(self, path: PathLike) -> bool:
        return Path(path).exists()

    def _publish(self, path: PathLike, data: bytes) -> None:
        atomic_write_bytes(path, data)

    def _read(self, path: PathLike) -> bytes:
        return read_bytes(path)

    def _unlink(self, path: PathLike) -> None:
        Path(path).unlink()

    # -- lifecycle ------------------------------------------------------
    def create(self, manifest: Dict[str, Any]) -> None:
        """Start a fresh run directory; refuses to clobber an existing run."""
        self._ensure_root()
        if self._exists(self.manifest_path):
            raise ManifestMismatchError(
                f"{self.run_dir} already contains a durable run; "
                f"resume it with 'repro resume {self.run_dir}' or pick a "
                f"fresh --checkpoint-dir",
                run_dir=str(self.run_dir),
            )
        self.manifest = manifest
        self._write_manifest()

    def open(self) -> Dict[str, Any]:
        """Load + validate an existing run directory's manifest."""
        if not self._exists(self.manifest_path):
            raise ManifestMismatchError(
                f"{self.run_dir} has no {MANIFEST_NAME}; not a durable run "
                f"directory",
                run_dir=str(self.run_dir),
            )
        try:
            # loads route through the read primitive so the storage-fault
            # shim can model read-side corruption of the manifest too
            manifest = json.loads(self._read(self.manifest_path).decode("utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointCorruptError(
                f"{self.manifest_path}: unreadable manifest ({exc})",
                path=str(self.manifest_path),
            ) from exc
        version = manifest.get("format_version")
        if version != MANIFEST_VERSION:
            raise CheckpointCorruptError(
                f"{self.manifest_path}: unsupported manifest version "
                f"{version!r} (expected {MANIFEST_VERSION})",
                path=str(self.manifest_path),
                version=version,
            )
        self.manifest = manifest
        return manifest

    def _write_manifest(self) -> None:
        assert self.manifest is not None
        text = json.dumps(self.manifest, indent=2, sort_keys=True) + "\n"
        # transient EIO/ENOSPC on the publish gets a bounded retry; the
        # atomic temp+rename discipline makes the re-attempt safe (the
        # failed attempt never touched the destination)
        retry_transient(
            lambda: self._publish(self.manifest_path, text.encode("utf-8")),
            description=f"manifest write ({self.manifest_path})",
        )

    # -- checkpoint IO --------------------------------------------------
    def next_seq(self) -> int:
        """The sequence number the next checkpoint should carry."""
        entries = (self.manifest or {}).get("checkpoints", [])
        return int(entries[-1]["seq"]) + 1 if entries else 0

    def write(
        self,
        checkpoint: Checkpoint,
        *,
        engine: str,
        algorithm: str,
        queue_kind: str,
        totals: Mapping[str, int],
        fault_cursor: Mapping[str, Any],
        journal_commit: Optional[int],
        keep: int,
    ) -> Path:
        """Persist one capture and index it in the manifest.

        Write order is the crash-safety argument: (1) the checkpoint
        lands atomically under its final name, (2) the manifest —
        already pruned to the ``keep`` newest entries — is atomically
        replaced, (3) only then are dropped checkpoint files unlinked.
        A crash between any two steps leaves a manifest whose every
        entry points at a complete, CRC-valid file.
        """
        assert self.manifest is not None
        blob = serialize_checkpoint(
            checkpoint,
            engine=engine,
            algorithm=algorithm,
            queue_kind=queue_kind,
            totals=totals,
            fault_cursor=fault_cursor,
            journal_commit=journal_commit,
        )
        path = self.checkpoint_path(checkpoint.index)
        retry_transient(
            lambda: self._publish(path, blob),
            description=f"checkpoint write ({path})",
        )
        entries = list(self.manifest.get("checkpoints", []))
        entries.append(
            {
                "seq": int(checkpoint.index),
                "round_index": int(checkpoint.round_index),
                "at": float(checkpoint.at),
                "file": path.name,
                "bytes": len(blob),
                "journal_commit": None
                if journal_commit is None
                else int(journal_commit),
            }
        )
        dropped = entries[:-keep] if keep > 0 else []
        self.manifest["checkpoints"] = entries[-keep:] if keep > 0 else entries
        self._write_manifest()
        for entry in dropped:
            try:
                self._unlink(self.run_dir / entry["file"])
            except OSError:
                pass  # GC is best-effort; the manifest no longer points here
        if obs_trace.ACTIVE is not None:
            probe.checkpoint_write(
                checkpoint.index,
                checkpoint.at,
                path=str(path),
                nbytes=len(blob),
                round_index=checkpoint.round_index,
            )
        return path

    def load(self, seq: int) -> RestoredRun:
        path = self.checkpoint_path(seq)
        try:
            data = self._read(path)
        except OSError as exc:
            raise CheckpointCorruptError(
                f"{path}: cannot read checkpoint ({exc})", path=str(path)
            ) from exc
        restored = deserialize_checkpoint(data, source=str(path))
        if restored.seq != seq:
            raise CheckpointCorruptError(
                f"{path}: file claims sequence {restored.seq}, manifest "
                f"expects {seq}",
                path=str(path),
            )
        return restored

    def load_latest(self) -> Optional[RestoredRun]:
        """The newest manifest-indexed checkpoint, or None before the first."""
        entries = (self.manifest or {}).get("checkpoints", [])
        if not entries:
            return None
        return self.load(int(entries[-1]["seq"]))

    def drop_newer_than(self, seq: Optional[int]) -> List[Dict[str, Any]]:
        """Demote the manifest to generation ``seq`` (``None`` = none).

        The resume fallback ladder calls this *before* rebuilding an
        engine on an older generation: the manifest is atomically
        rewritten without the newer (corrupt) entries first, then their
        files are unlinked best-effort — so any harness re-opening the
        run directory sees the adopted generation as the newest and its
        ``next_seq`` overwrites the corrupt range instead of appending
        past it.  Returns the dropped entries.
        """
        assert self.manifest is not None
        entries = list(self.manifest.get("checkpoints", []))
        if seq is None:
            retained: List[Dict[str, Any]] = []
        else:
            retained = [e for e in entries if int(e["seq"]) <= seq]
        dropped = [e for e in entries if e not in retained]
        if not dropped:
            return []
        self.manifest["checkpoints"] = retained
        self._write_manifest()
        for entry in dropped:
            try:
                self._unlink(self.run_dir / entry["file"])
            except OSError:
                pass  # best-effort; the manifest no longer points here
        return dropped


# ----------------------------------------------------------------------
# The durable manager (drop-in CheckpointManager subclass)
# ----------------------------------------------------------------------
class DurableCheckpointManager(CheckpointManager):
    """A :class:`CheckpointManager` whose captures also land on disk.

    The in-memory rollback ladder (repair epochs -> rollback) is
    untouched; ``_persist`` mirrors each capture into the store using
    the sequencing metadata the harness staged just before ``take``.
    """

    #: checkpoint cadence when --checkpoint-dir is given without an
    #: explicit --checkpoint-interval
    DEFAULT_INTERVAL = 5

    def __init__(
        self,
        interval: Optional[int],
        *,
        keep: int,
        store: DurableCheckpointStore,
        engine: str,
        algorithm: str,
        queue_kind: str,
    ):
        super().__init__(interval, keep=keep)
        self.store = store
        self.engine = engine
        self.algorithm = algorithm
        self.queue_kind = queue_kind
        self.written = 0
        self.last_path: Optional[Path] = None
        self._staged_totals: Mapping[str, int] = {}
        self._staged_cursor: Mapping[str, Any] = {}
        self._staged_commit: Optional[int] = None
        crash_at = os.environ.get("REPRO_CRASH_AT_ROUND")
        sigint_at = os.environ.get("REPRO_SIGINT_AT_ROUND")
        self._crash_at = int(crash_at) if crash_at else None
        self._sigint_at = int(sigint_at) if sigint_at else None

    def stage(
        self,
        totals: Mapping[str, int],
        fault_cursor: Mapping[str, Any],
        journal_commit: Optional[int],
    ) -> None:
        """Record the side metadata the next ``take`` should persist."""
        self._staged_totals = totals
        self._staged_cursor = fault_cursor
        self._staged_commit = journal_commit

    def _persist(self, checkpoint: Checkpoint) -> None:
        self.last_path = self.store.write(
            checkpoint,
            engine=self.engine,
            algorithm=self.algorithm,
            queue_kind=self.queue_kind,
            totals=self._staged_totals,
            fault_cursor=self._staged_cursor,
            journal_commit=self._staged_commit,
            keep=self.keep,
        )
        self.written += 1

    def chaos_hook(self, round_index: int) -> None:
        """Crash-injection hooks for the durability test harness.

        ``REPRO_CRASH_AT_ROUND=N`` SIGKILLs the process the first time
        round ``N`` completes — an unhookable hard death, like power
        loss.  ``REPRO_SIGINT_AT_ROUND=N`` sends a real SIGINT to self,
        exercising the graceful-interrupt path through the actual signal
        handler at a deterministic round.
        """
        if self._crash_at is not None and round_index >= self._crash_at:
            os.kill(os.getpid(), signal.SIGKILL)
        if self._sigint_at is not None and round_index >= self._sigint_at:
            self._sigint_at = None
            os.kill(os.getpid(), signal.SIGINT)


# ----------------------------------------------------------------------
# Graceful interrupts
# ----------------------------------------------------------------------
_STOP = False


def stop_requested() -> bool:
    """True once SIGINT/SIGTERM arrived under an :class:`InterruptGuard`."""
    return _STOP


class InterruptGuard:
    """Turn the first SIGINT/SIGTERM into a cooperative stop request.

    While active, the first signal only sets a flag — the engine
    finishes its current round, flushes a final durable checkpoint, and
    unwinds with :class:`repro.errors.RunInterruptedError`.  A second
    signal raises ``KeyboardInterrupt`` immediately (the user really
    means it).  Handlers are restored on exit; installation failures in
    non-main threads are tolerated (the guard becomes a no-op).
    """

    def __init__(self) -> None:
        self._previous: Dict[int, Any] = {}

    def _handler(self, signum: int, frame: Any) -> None:
        global _STOP
        if _STOP:
            raise KeyboardInterrupt
        _STOP = True

    def __enter__(self) -> "InterruptGuard":
        global _STOP
        _STOP = False
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[signum] = signal.signal(signum, self._handler)
            except ValueError:
                pass  # not the main thread; leave default handling alone
        return self

    def __exit__(self, *exc_info: Any) -> None:
        global _STOP
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except ValueError:
                pass
        self._previous.clear()
        _STOP = False


# ----------------------------------------------------------------------
# Manifest construction + resume
# ----------------------------------------------------------------------
def build_manifest(config: Any, graph: Any, engine: str, spec: Any) -> Dict[str, Any]:
    """Assemble a fresh run's manifest from its configuration.

    Deliberately timestamp-free: two runs of the same workload produce
    byte-identical manifests, which keeps durable runs inside the
    repository's determinism discipline.
    """
    from ..graph.io import graph_fingerprint  # local: io imports are heavy

    meta = dict(config.run_meta or {})
    interval = (
        config.checkpoint_interval
        if config.checkpoint_interval is not None
        else DurableCheckpointManager.DEFAULT_INTERVAL
    )
    return {
        "format_version": MANIFEST_VERSION,
        "workload": meta.get("workload"),
        "engine": engine,
        "engine_options": meta.get("engine_options", {}),
        "graph": {
            "fingerprint": graph_fingerprint(graph),
            "num_vertices": int(graph.num_vertices),
            "num_edges": int(graph.num_edges),
            "weighted": bool(graph.is_weighted),
            "name": graph.name,
        },
        "algorithm": spec.name,
        "resilience": {
            "checkpoint_interval": int(interval),
            "checkpoint_keep": int(config.checkpoint_keep),
            "fault_plan": config.fault_plan.to_dict(),
        },
        "journal": JOURNAL_NAME if engine in ("sliced", "sliced-mp") else None,
        "checkpoints": [],
    }


@dataclass
class ResumeOutcome:
    """What :func:`resume_run` hands back to the CLI.

    ``result`` is the engine-independent
    :class:`repro.core.engines.RunResult`; the engine's native result
    object rides along as ``result.raw``.  ``provenance`` records *how*
    the run was recovered: which checkpoint generation was adopted,
    which newer generations failed verification and were discarded, and
    what the journal replay did (see ``repro resume --json``).
    """

    engine: str
    manifest: Dict[str, Any]
    restored: Optional[RestoredRun]
    result: Any
    provenance: Dict[str, Any] = field(default_factory=dict)


def resume_run(
    run_dir: PathLike, *, timeseries=None, fallback: bool = True
) -> ResumeOutcome:
    """Validate a run directory, restore its state, run to convergence.

    The manifest's graph fingerprint is recomputed from the workload it
    names; any disagreement — different dataset files, different proxy
    scale, a hand-edited manifest — raises
    :class:`repro.errors.ManifestMismatchError` instead of silently
    producing answers for the wrong graph.

    ``fallback=True`` (the default) is the generation ladder: when the
    newest checkpoint fails verification — CRC mismatch, truncation,
    a journal that cannot replay to its commit — resume falls back to
    the next-older manifest-indexed generation, demoting the manifest
    (:meth:`DurableCheckpointStore.drop_newer_than`) before rebuilding
    the engine, and ultimately restarts from scratch when no generation
    verifies.  Determinism makes every rung reach the same final bits.
    ``fallback=False`` preserves the strict contract: the first
    :class:`CheckpointCorruptError` propagates (CLI exit 2).

    ``timeseries`` (a :class:`repro.obs.TimeSeries`) gives the resumed
    tail the same ``--metrics`` sampling a fresh ``repro run`` gets.
    """
    # local imports: durable is reachable from the engines through the
    # harness, so importing them at module scope would be circular
    from ..analysis import prepare_workload
    from ..core.engines import build_engine, resumable_engine_names
    from ..graph.io import graph_fingerprint
    from .faults import FaultPlan
    from .harness import ResilienceConfig
    from .substrate import build_substrate

    # wall clock feeds only the resume-span telemetry below, never the
    # replayed trajectory  # repro: allow(DET-001)
    wall_start = time.monotonic()
    substrate = build_substrate()
    store = substrate.checkpoint_store(run_dir)
    manifest = store.open()

    workload = manifest.get("workload") or {}
    algorithm = workload.get("algorithm")
    dataset = workload.get("dataset")
    scale = workload.get("scale")
    if not algorithm or not dataset or scale is None:
        raise ManifestMismatchError(
            f"{store.manifest_path}: manifest does not name a CLI workload "
            f"(algorithm/dataset/scale); only runs started with "
            f"'repro run --checkpoint-dir' can be resumed",
            run_dir=str(store.run_dir),
        )
    engine = manifest.get("engine")
    if engine not in resumable_engine_names():
        raise ManifestMismatchError(
            f"{store.manifest_path}: engine {engine!r} is not resumable "
            f"(expected one of {', '.join(resumable_engine_names())})",
            run_dir=str(store.run_dir),
            engine=engine,
        )

    graph, spec = prepare_workload(dataset, algorithm, scale=scale)
    fingerprint = graph_fingerprint(graph)
    recorded = (manifest.get("graph") or {}).get("fingerprint")
    if recorded != fingerprint:
        raise ManifestMismatchError(
            f"{store.manifest_path}: graph fingerprint mismatch — the "
            f"manifest records {recorded!r} but workload "
            f"{algorithm}/{dataset}@{scale:g} reproduces {fingerprint!r}; "
            f"refusing to resume against a different graph",
            run_dir=str(store.run_dir),
            recorded=recorded,
            actual=fingerprint,
        )

    section = manifest.get("resilience") or {}
    config = ResilienceConfig(
        fault_plan=FaultPlan.from_dict(section.get("fault_plan") or {}),
        checkpoint_interval=section.get("checkpoint_interval"),
        checkpoint_keep=int(section.get("checkpoint_keep", 2)),
        checkpoint_dir=str(store.run_dir),
        run_meta={
            "workload": workload,
            "engine_options": manifest.get("engine_options", {}),
        },
        resume=True,
    )
    stored_options = manifest.get("engine_options") or {}
    options: Dict[str, Any] = {}
    if engine in ("sliced", "sliced-mp"):
        options = {
            "num_slices": int(stored_options.get("num_slices", 2)),
            "queue_capacity": stored_options.get("queue_capacity"),
            "auto_slice": bool(stored_options.get("auto_slice", True)),
            # dispatch changes the float trajectory, so a resume must
            # rebuild under the mode the run started with; an absent
            # key means the run used the engine default ("barrier"),
            # mirroring what build_engine would resolve
            "dispatch": str(stored_options.get("dispatch", "barrier")),
        }
    if engine == "sliced-mp":
        options["num_workers"] = int(stored_options.get("num_workers", 2))

    def build():
        return build_engine(
            engine, (graph, spec), options, resilience=config,
            timeseries=timeseries,
        )

    # The generation ladder: walk manifest entries newest-first, adopt
    # the first generation that both deserializes (CRC) and restores
    # (journal replay + bytewise cross-check).  Each failed rung demotes
    # the on-disk manifest *before* the next engine build, so the
    # harness the engine constructs over this run directory never sees
    # — and can never resurrect — a discarded corrupt generation.
    entries = list(manifest.get("checkpoints") or [])
    skipped: List[Dict[str, Any]] = []
    restored: Optional[RestoredRun] = None
    handle = None
    for entry in reversed(entries):
        seq = int(entry["seq"])
        try:
            candidate = store.load(seq)
            if candidate.engine != engine:
                raise CheckpointCorruptError(
                    f"{store.run_dir}: checkpoint {seq} was written by the "
                    f"{candidate.engine!r} engine but the manifest names "
                    f"{engine!r}",
                    run_dir=str(store.run_dir),
                )
        except CheckpointCorruptError as exc:
            if not fallback:
                raise
            skipped.append({"seq": seq, "error": str(exc)})
            continue
        if skipped:
            store.drop_newer_than(seq)
        candidate_handle = build()
        try:
            candidate_handle.restore(candidate)
        except CheckpointCorruptError as exc:
            if not fallback:
                raise
            skipped.append({"seq": seq, "error": str(exc)})
            store.drop_newer_than(seq - 1)
            continue
        restored, handle = candidate, candidate_handle
        break

    if handle is None:
        # no generation verified (or none was ever written): restart
        # from scratch — determinism still reaches the reference bits
        if skipped:
            store.drop_newer_than(None)
        handle = build()
        transport = substrate.spill_transport(store.journal_path)
        if engine in ("sliced", "sliced-mp") and transport.exists():
            # the surviving journal pairs with checkpoints we no longer
            # trust (or that never existed): reset it so the fresh run's
            # records do not stack on the dead run's history
            transport.create(handle.runner.partition.num_slices).close()

    journal_stats = getattr(handle.runner, "journal_replay", None)
    provenance = {
        "generation": None if restored is None else restored.seq,
        "round_index": None if restored is None else restored.round_index,
        "fallback": bool(skipped),
        "from_scratch": restored is None,
        "checkpoints_skipped": skipped,
        "journal": journal_stats,
    }
    result = handle.run()
    if obs_trace.ACTIVE is not None:
        probe.resume_span(
            wall_start,
            # telemetry-only span end; see wall_start  # repro: allow(DET-001)
            time.monotonic(),
            checkpoint=restored.seq if restored is not None else -1,
            round_index=restored.round_index if restored is not None else 0,
            engine=engine,
        )
    return ResumeOutcome(
        engine=engine,
        manifest=manifest,
        restored=restored,
        result=result,
        provenance=provenance,
    )


# ----------------------------------------------------------------------
# Lifecycle management: repro gc
# ----------------------------------------------------------------------
@dataclass
class GcReport:
    """What ``repro gc <run-dir>`` did (or, with ``--dry-run``, would do)."""

    run_dir: str
    keep: int
    dry_run: bool
    #: retained, verified manifest entries (newest last)
    retained: List[Dict[str, Any]] = field(default_factory=list)
    #: verified entries beyond the retention window (files removed)
    dropped: List[Dict[str, Any]] = field(default_factory=list)
    #: manifest entries whose files failed verification (files removed)
    corrupt: List[Dict[str, Any]] = field(default_factory=list)
    #: on-disk ``*.ckpt`` files no manifest entry references
    orphans: List[str] = field(default_factory=list)
    #: journal compaction stats, or None (no journal / nothing to drop)
    journal: Optional[Dict[str, Any]] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "run_dir": self.run_dir,
            "keep": self.keep,
            "dry_run": self.dry_run,
            "retained": self.retained,
            "dropped": self.dropped,
            "corrupt": self.corrupt,
            "orphans": self.orphans,
            "journal": self.journal,
        }


def gc_run_dir(
    run_dir: PathLike, *, keep: Optional[int] = None, dry_run: bool = False
) -> GcReport:
    """Apply the retention policy to a durable run directory.

    Every manifest-indexed checkpoint is *verified* (full CRC
    deserialization) first; corrupt generations and verified generations
    beyond the ``keep`` newest are dropped — manifest demoted
    atomically, then files unlinked — along with orphaned ``*.ckpt``
    files nothing references.  The journal, when present, is compacted
    at the **oldest retained** generation's commit, never the newest:
    the retention invariant is that every retained checkpoint stays
    resumable, so no journal record at or past the oldest retained
    commit is ever removed.  ``keep`` defaults to the run's configured
    ``checkpoint_keep``.  ``dry_run`` reports without mutating.
    """
    from .substrate import build_substrate

    store = build_substrate().checkpoint_store(run_dir)
    manifest = store.open()
    if keep is None:
        keep = int((manifest.get("resilience") or {}).get("checkpoint_keep", 2))
    if keep < 1:
        raise ManifestMismatchError(
            f"gc --keep must be >= 1 (got {keep}); removing every "
            f"generation would make the run unresumable",
            run_dir=str(store.run_dir),
        )
    report = GcReport(run_dir=str(store.run_dir), keep=keep, dry_run=dry_run)

    entries = list(manifest.get("checkpoints") or [])
    verified: List[Dict[str, Any]] = []
    for entry in entries:
        seq = int(entry["seq"])
        try:
            restored = store.load(seq)
        except CheckpointCorruptError as exc:
            report.corrupt.append(
                {"seq": seq, "file": entry["file"], "error": str(exc)}
            )
            continue
        entry = dict(entry)
        # backfill for manifests written before entries carried the
        # commit — the checkpoint header has always recorded it
        entry.setdefault("journal_commit", restored.journal_commit)
        verified.append(entry)
    report.retained = verified[-keep:]
    report.dropped = verified[: -keep] if len(verified) > keep else []

    referenced = {e["file"] for e in report.retained}
    removable = {e["file"] for e in report.dropped} | {
        e["file"] for e in report.corrupt
    }
    report.orphans = sorted(
        p.name
        for p in store.run_dir.glob("*.ckpt")
        if p.name not in referenced and p.name not in removable
    )

    journal_boundary: Optional[int] = None
    if manifest.get("journal") and store.journal_path.exists() and report.retained:
        journal_boundary = report.retained[0].get("journal_commit")

    if dry_run:
        if journal_boundary is not None:
            report.journal = {"compact_upto": int(journal_boundary)}
        return report

    manifest["checkpoints"] = report.retained
    store._write_manifest()
    for name in sorted(removable | set(report.orphans)):
        try:
            (store.run_dir / name).unlink()
        except OSError:
            pass  # best-effort; the manifest no longer points here

    if journal_boundary is not None:
        from ..analysis import prepare_workload
        from .journal import SpillJournal

        workload = manifest.get("workload") or {}
        if (
            not workload.get("dataset")
            or not workload.get("algorithm")
            or workload.get("scale") is None
        ):
            # compaction needs the algorithm's reduce operator, which
            # only a CLI-named workload can reconstruct
            report.journal = {"skipped": "manifest names no CLI workload"}
            return report
        num_slices = int(
            (manifest.get("engine_options") or {}).get("num_slices", 2)
        )
        _, spec = prepare_workload(
            workload["dataset"],
            workload["algorithm"],
            scale=workload["scale"],
        )
        stats = SpillJournal.compact_file(
            store.journal_path,
            num_slices,
            int(journal_boundary),
            spec.reduce,
        )
        report.journal = stats
    return report
