"""Per-slice lease files: crash-detectable slice ownership on disk.

The multi-process sliced runtime gives every slice to exactly one
worker process.  Ownership is recorded as a **lease file** in the run
directory (durable runs) or a scratch directory (ephemeral runs):

- **acquire** is an atomic ``O_CREAT | O_EXCL`` create
  (:func:`repro.ioutil.exclusive_create_bytes`) writing a small JSON
  record — owner name, pid, epoch.  Two processes racing for the same
  slice cannot both win; the loser sees the holder and raises
  :class:`repro.errors.LeaseHeldError`.
- **heartbeat** rewrites the payload with a monotonically increasing
  ``heartbeat`` counter (and, as a side effect of the atomic publish,
  a fresh mtime).  Workers run a daemon thread beating their leases
  every few hundred milliseconds.
- **staleness** is observable by anyone: a lease is stale when its
  recorded pid no longer exists *or* its heartbeat has gone silent for
  the timeout.  Silence is judged two ways: callers that poll can pass
  an ``observations`` cache and :func:`is_stale` compares successive
  *heartbeat counters* — immune to coarse filesystem mtime resolution
  (FAT's 2s, or network filesystems that round) — while one-shot
  callers fall back to mtime age.  A SIGKILLed worker stops
  heartbeating instantly and its pid is reaped by the supervisor's
  ``join``, so both signals fire.
- **break_stale** unlinks a stale lease so the slice can be re-leased
  to a replacement worker.  Breaking a *fresh* lease is refused with
  :class:`LeaseHeldError` — the supervisor only ever breaks leases of
  workers it has already observed dead, so a refusal here means two
  live runs share a run directory.

The protocol is deliberately file-only (no locks, no sockets): it
survives the same crash spectrum as the GPCK/GPJL durable layer and can
be inspected with ``ls`` and ``cat`` while a run is live.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from .. import ioutil
from ..errors import LeaseHeldError
from ..ioutil import exclusive_create_bytes
from .storagefaults import retry_transient

__all__ = [
    "LeaseInfo",
    "SliceLease",
    "lease_path",
    "parse_lease_bytes",
    "read_lease",
    "is_stale",
    "break_stale",
    "DEFAULT_LEASE_TIMEOUT",
]

PathLike = Union[str, os.PathLike]

#: seconds without a heartbeat after which a live-pid lease is stale
DEFAULT_LEASE_TIMEOUT = 5.0


@dataclass(frozen=True)
class LeaseInfo:
    """The JSON payload of a lease file.

    ``heartbeat`` is a monotonic per-lease counter bumped by every
    :meth:`SliceLease.refresh`; a stable counter across a timeout means
    the owner went silent regardless of filesystem mtime granularity.
    """

    slice_index: int
    owner: str
    pid: int
    epoch: int
    heartbeat: int = 0

    def to_json(self) -> str:
        return json.dumps(
            {
                "slice": self.slice_index,
                "owner": self.owner,
                "pid": self.pid,
                "epoch": self.epoch,
                "heartbeat": self.heartbeat,
            },
            sort_keys=True,
        )


def lease_path(lease_dir: PathLike, slice_index: int) -> Path:
    """Canonical lease file location for one slice."""
    return Path(lease_dir) / f"slice-{slice_index:04d}.lease"


def parse_lease_bytes(data: bytes) -> Optional[LeaseInfo]:
    """Decode a lease payload; ``None`` if the bytes are unparseable.

    The backend-neutral half of :func:`read_lease`: the filesystem
    backend feeds it file contents, the in-memory substrate backend its
    stored blob, so a damaged payload means "stale" identically
    everywhere.
    """
    try:
        payload = json.loads(data.decode("utf-8"))
        return LeaseInfo(
            slice_index=int(payload["slice"]),
            owner=str(payload["owner"]),
            pid=int(payload["pid"]),
            epoch=int(payload.get("epoch", 0)),
            heartbeat=int(payload.get("heartbeat", 0)),
        )
    except (UnicodeDecodeError, ValueError, KeyError, TypeError):
        return None


def read_lease(path: PathLike) -> Optional[LeaseInfo]:
    """Parse a lease file; ``None`` if it is missing or unreadable.

    An unreadable lease (torn write, hand-edited) parses as ``None``
    and is therefore treated as stale by :func:`is_stale` — an owner
    that cannot prove liveness does not hold the slice.
    """
    try:
        data = Path(path).read_bytes()
    except OSError:
        return None
    return parse_lease_bytes(data)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def is_stale(
    path: PathLike,
    *,
    timeout: float = DEFAULT_LEASE_TIMEOUT,
    observations: Optional[Dict[str, Tuple[int, float]]] = None,
) -> bool:
    """Whether the lease at ``path`` has a dead or silent owner.

    Missing files are *not* stale (there is nothing to break — acquire
    would simply succeed); unparseable files are.

    ``observations`` is an optional caller-owned cache mapping lease
    path to the last ``(heartbeat, seen_at)`` pair.  Pollers that pass
    the same dict on every check get counter-based staleness: the lease
    is fresh while the payload's heartbeat counter keeps advancing and
    stale once it sits unchanged for ``timeout`` seconds.  This removes
    the dependence on filesystem mtime resolution (coarse-mtime
    filesystems round to whole seconds or worse, which would make a
    live 200ms heartbeat look silent).  One-shot callers without a
    cache fall back to mtime age.
    """
    path = Path(path)
    try:
        mtime = path.stat().st_mtime
    except FileNotFoundError:
        return False
    info = read_lease(path)
    if info is None or not _pid_alive(info.pid):
        return True
    # wall clock by design: staleness is real elapsed time since the
    # last heartbeat (this file is DET-001 allowlisted — lease state
    # is operational liveness, never part of the replayed trajectory)
    if observations is not None:
        key = str(path)
        now = time.monotonic()
        seen = observations.get(key)
        if seen is None or seen[0] != info.heartbeat:
            observations[key] = (info.heartbeat, now)
            return False
        return (now - seen[1]) > timeout
    return (time.time() - mtime) > timeout


def break_stale(
    path: PathLike,
    *,
    timeout: float = DEFAULT_LEASE_TIMEOUT,
    observations: Optional[Dict[str, Tuple[int, float]]] = None,
) -> bool:
    """Unlink a stale lease so the slice can be re-leased.

    Returns ``True`` if a stale lease was removed, ``False`` if there
    was no lease to begin with.  Raises :class:`LeaseHeldError` when the
    lease is fresh — its owner is alive and heartbeating.
    ``observations`` threads through to :func:`is_stale` for pollers
    using counter-based staleness.
    """
    path = Path(path)
    if not path.exists():
        return False
    if not is_stale(path, timeout=timeout, observations=observations):
        info = read_lease(path)
        raise LeaseHeldError(
            f"{path}: lease is held by live owner "
            f"{info.owner if info else '<unreadable>'} "
            f"(pid {info.pid if info else '?'})",
            path=str(path),
            holder=None if info is None else info.owner,
            pid=None if info is None else info.pid,
        )
    try:
        path.unlink()
    except FileNotFoundError:
        return False
    return True


class SliceLease:
    """One held lease: acquire exclusively, heartbeat, release.

    Instances are only ever created through :meth:`acquire`; holding one
    means the atomic create succeeded and this process owns the slice
    until :meth:`release` (or death, after which the lease goes stale).
    """

    def __init__(self, path: Path, info: LeaseInfo):
        self.path = path
        self.info = info

    @classmethod
    def acquire(
        cls,
        lease_dir: PathLike,
        slice_index: int,
        *,
        owner: str,
        pid: Optional[int] = None,
        epoch: int = 0,
    ) -> "SliceLease":
        """Atomically claim ``slice_index``; raise if someone holds it."""
        info = LeaseInfo(
            slice_index=slice_index,
            owner=owner,
            pid=os.getpid() if pid is None else pid,
            epoch=epoch,
        )
        path = lease_path(lease_dir, slice_index)
        try:
            # transient EIO/ENOSPC on the create is retried with a
            # bounded backoff; FileExistsError is NOT transient — losing
            # the race must surface as LeaseHeldError, never be retried
            # into a stolen slice (retry_transient re-raises it as-is)
            retry_transient(
                lambda: exclusive_create_bytes(
                    path, info.to_json().encode("utf-8")
                ),
                description=f"lease acquire ({path})",
            )
        except FileExistsError:
            holder = read_lease(path)
            raise LeaseHeldError(
                f"{path}: slice {slice_index} is already leased to "
                f"{holder.owner if holder else '<unreadable>'} "
                f"(pid {holder.pid if holder else '?'})",
                path=str(path),
                slice=slice_index,
                holder=None if holder is None else holder.owner,
                pid=None if holder is None else holder.pid,
            ) from None
        return cls(path, info)

    def refresh(self) -> None:
        """Heartbeat: bump the payload's counter (and thereby the mtime).

        The refreshed payload is the acquired one with ``heartbeat``
        incremented, published atomically so observers only ever parse
        a complete record; the counter makes staleness detection work
        on filesystems whose mtime granularity is coarser than the
        heartbeat interval (see :func:`is_stale`).  A transient IO
        error must not kill the heartbeat thread (a worker that stops
        heartbeating over one flaky ``EIO`` gets its lease broken and
        its slice stolen), so the publish is retried with a bounded
        backoff before giving up.
        """
        next_info = LeaseInfo(
            slice_index=self.info.slice_index,
            owner=self.info.owner,
            pid=self.info.pid,
            epoch=self.info.epoch,
            heartbeat=self.info.heartbeat + 1,
        )

        def attempt() -> None:
            shim = ioutil.IO_SHIM
            if shim is not None:
                hook = getattr(shim, "on_utime", None)
                if hook is not None:
                    hook(self.path)
            # a broken (unlinked) lease must stay broken: rewriting it
            # would resurrect a fenced claim, so probe existence first
            # and let the FileNotFoundError fall through to the caller
            if not self.path.exists():
                raise FileNotFoundError(str(self.path))
            ioutil.atomic_write_bytes(
                self.path, next_info.to_json().encode("utf-8")
            )

        try:
            retry_transient(
                attempt, description=f"lease heartbeat ({self.path})"
            )
        except FileNotFoundError:
            return  # broken from under us; the next acquire conflict reports it
        self.info = next_info

    def release(self) -> None:
        """Give the slice up cleanly (idempotent)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
