"""Invariant checking and delta re-injection repair (the defence side).

Detection exploits the structure of delta-accumulative algorithms
(paper Section II-B).  At any *quiescent* point — the event queue is
empty, nothing is in flight — a fault-free run satisfies a per-vertex
local fixed-point invariant::

    state[v] == reduce( initial_delta(v),
                        propagate(state[u], u, v, w_uv) for u -> v )

because every vertex's final change was propagated to, and reduced
into, all of its out-neighbours before the queue drained.  Each
algorithm factory publishes this as ``AlgorithmSpec.local_target``, a
vectorized function of (graph, current state):

- **delta conservation** (PageRank, Adsorption; additive reduce): the
  residual ``target - state`` is the event mass missing from (positive)
  or erroneously added to (negative) the vertex.  A dropped event shows
  up as exactly its lost delta; a duplicated event as its delta again.
- **monotone consistency** (SSSP, BFS: min; CC: max): ``state`` must
  equal ``target``; a state *worse* than target means a lost update, a
  state *better* than target is impossible without corruption (min/max
  can never overshoot), so the vertex is reset before repair.

Repair is **delta re-injection**: for each suspect vertex the checker
emits the event that restores consistency — the residual for additive
algorithms, the recomputed target for monotonic ones.  This is sound
because the delta-accumulative model converges from *any* intermediate
state once the missing deltas are supplied (the same property that
lets GraphPulse coalesce and reorder events freely):

- additive specs are contractions (|propagate| < 1 along every path by
  construction: alpha < 1, normalized weights), so injecting the
  residual moves the state monotonically toward the unique fixed point;
- monotonic specs re-derive each vertex from its in-neighbours; a
  corrupted-better vertex is first reset to the reduce identity, after
  which re-injection is ordinary (idempotent) propagation.  Vertices
  contaminated downstream become inconsistent themselves once their
  parent is fixed and are caught by the next repair epoch, so repair
  cascades at one contamination-depth per epoch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..algorithms.base import AlgorithmSpec
from ..graph import CSRGraph

__all__ = ["RepairPlan", "state_invalid", "compute_repairs"]

#: float comparison slop for monotonic (exact-arithmetic) invariants —
#: targets are recomputed with vectorized numpy while states were built
#: scalar-by-scalar, so allow one ulp-scale band.
_MONOTONE_ATOL = 1e-9

#: once a sweep has *detected* a fault, residuals down to this floor are
#: re-injected (not just the over-tolerance ones): the extra events are
#: below the propagation threshold so they only touch their own vertex,
#: and they park the repaired state at the invariant fixed point instead
#: of one detection-tolerance away from it.
_REPAIR_FLOOR = 1e-12


def state_invalid(value: float, identity: float, overflow_limit: float) -> bool:
    """NaN/overflow guard applied when a reduce result is written back.

    A value is invalid when it is NaN, an infinity the algorithm does
    not use (only the reduce identity may legitimately be infinite, as
    in min/max algorithms), or — for finite-identity algorithms —
    beyond ``overflow_limit``.
    """
    if math.isnan(value):
        return True
    if math.isinf(value):
        return value != identity
    return math.isfinite(identity) and abs(value) > overflow_limit


@dataclass
class RepairPlan:
    """Outcome of one quiescent invariant sweep."""

    #: vertices whose state was provably corrupted (reset to identity)
    resets: List[int] = field(default_factory=list)
    #: (vertex, delta) events restoring local consistency
    injections: List[Tuple[int, float]] = field(default_factory=list)
    #: largest residual magnitude seen (additive) or count mismatch
    worst_residual: float = 0.0
    #: vertices whose residual exceeded the detection tolerance (the
    #: actual evidence; ``injections`` may add sub-tolerance cleanup)
    detected: List[int] = field(default_factory=list)

    @property
    def suspects(self) -> List[int]:
        seen = dict.fromkeys(self.resets)
        for vertex, _ in self.injections:
            seen.setdefault(vertex)
        return list(seen)

    @property
    def is_clean(self) -> bool:
        return not self.resets and not self.injections


def compute_repairs(
    spec: AlgorithmSpec,
    graph: CSRGraph,
    state: np.ndarray,
    *,
    tolerance: float,
) -> RepairPlan:
    """Run the quiescent invariant check; returns the repair plan.

    ``tolerance`` bounds the residual an *additive* algorithm may carry
    fault-free (local termination leaves up to ~threshold of
    unpropagated mass per vertex); monotonic algorithms are checked to
    float exactness.  Requires ``spec.local_target``.
    """
    if spec.local_target is None:
        raise ValueError(
            f"algorithm {spec.name!r} publishes no local_target invariant"
        )
    plan = RepairPlan()

    # NaN states poison the vectorized target computation (NaN wins any
    # min/max and taints any sum), so quarantine them first: reset to
    # identity and let the target derived from their neighbours repair
    # them like any other corrupted vertex.
    nan_mask = np.isnan(state)
    if nan_mask.any():
        for vertex in np.flatnonzero(nan_mask):
            plan.resets.append(int(vertex))
            plan.detected.append(int(vertex))
        state[nan_mask] = spec.identity

    target = np.asarray(spec.local_target(graph, state), dtype=np.float64)

    if spec.additive:
        residual = target - state
        residual[~np.isfinite(residual)] = 0.0
        magnitude = np.abs(residual)
        suspect = magnitude > tolerance
        plan.worst_residual = (
            float(magnitude.max()) if residual.size else 0.0
        )
        if suspect.any() or plan.resets:
            plan.detected.extend(int(v) for v in np.flatnonzero(suspect))
            # fault proven somewhere: repair the whole residual field,
            # not just the over-tolerance vertices (see _REPAIR_FLOOR)
            for vertex in np.flatnonzero(magnitude > _REPAIR_FLOOR):
                plan.injections.append((int(vertex), float(residual[vertex])))
        return plan

    # Monotonic: compare through the reduce operator itself so the same
    # code serves min- and max-style algorithms.  state "better" than
    # target (reduce keeps state, yet state != target) is impossible
    # fault-free -> corruption; state "worse" than target is a lost
    # update -> re-inject the target.
    diff = ~np.isclose(state, target, rtol=0.0, atol=_MONOTONE_ATOL)
    # treat inf == inf as equal regardless of isclose semantics
    both_inf = np.isinf(state) & np.isinf(target) & (np.sign(state) == np.sign(target))
    diff &= ~both_inf
    for vertex in np.flatnonzero(diff):
        v = int(vertex)
        plan.detected.append(v)
        s, t = float(state[v]), float(target[v])
        if spec.reduce(s, t) == s:
            # state strictly better than anything its neighbours can
            # justify: corrupted payload escaped into the state
            plan.resets.append(v)
            state[v] = spec.identity
            if math.isfinite(t) or t == spec.identity:
                plan.injections.append((v, t))
        else:
            plan.injections.append((v, t))
        plan.worst_residual = max(
            plan.worst_residual,
            abs(t - s) if math.isfinite(t - s) else math.inf,
        )
    return plan
