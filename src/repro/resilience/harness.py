"""The resilience harness: one object engines consult at fault sites.

Engines hold ``self.resilience`` (``None`` by default) and guard every
interaction with the one-branch fast path, mirroring the telemetry
layer::

    if self.resilience is not None:
        events = self.resilience.filter_insert(event, now)

The harness bundles the three pillars behind a small site-oriented API:

========================  ============================================
site (engine calls)        pillar exercised
========================  ============================================
``filter_insert``          injection: drop / duplicate / bitflip
``payload_ok``             detection: bin parity at drain
``guard_value``            detection: NaN/overflow on reduce results
``dram_delay``             injection + recovery: transient DRAM error,
                           bounded exponential-backoff retry
``spill_lost``             injection: inter-slice spill loss
``alive_lanes``            injection + recovery: dead lanes removed
                           from dispatch (graceful degradation)
``make_watchdog``          detection: progress watchdog
``maybe_checkpoint``       recovery: periodic checkpoint capture
``repair``                 detection + recovery: quiescent invariant
                           sweep, delta re-injection, rollback ladder
========================  ============================================

Fault-free discipline: with all rates zero, no scripted faults, no dead
lanes and no checkpoint interval, none of these methods mutates an
event, emits a trace record, or perturbs timing — runs with the harness
attached are bit-identical to runs without it (guarded by the
determinism regression tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.base import AlgorithmSpec
from ..core.event import Event
from ..errors import RunInterruptedError, UnrecoverableFaultError
from ..graph import CSRGraph
from ..obs import probe
from ..obs import trace as obs_trace
from .checkpoint import Checkpoint, CheckpointManager
from .faults import FaultInjector, FaultPlan
from .invariants import compute_repairs, state_invalid
from .watchdog import ProgressWatchdog

__all__ = ["ResilienceConfig", "ResilienceHarness"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything a resilient run needs, in one reproducible value.

    Parameters
    ----------
    fault_plan:
        What to inject (default: nothing — detection/recovery only).
    checkpoint_interval:
        Capture a checkpoint every N engine rounds (None: never).
    checkpoint_keep:
        How many recent checkpoints to retain for rollback.
    invariant_tolerance:
        Absolute per-vertex residual bound for the additive invariant
        check; ``None`` derives a per-vertex bound from the algorithm's
        published fault-free residual (``spec.residual_tolerance`` per
        in-edge), which keeps false positives at zero without going
        blind on low-degree vertices.
    max_repair_epochs:
        Repair epochs allowed before escalating to rollback.
    max_rollbacks:
        Rollbacks allowed before declaring the run unrecoverable.
    no_progress_rounds:
        Abort after this many consecutive rounds that process events
        without changing any state (None: rely on the round limit).
    overflow_limit:
        Magnitude above which a finite reduce result is quarantined.
    dram_max_retries:
        Read-retry attempts per DRAM transaction before giving up.
    dram_retry_backoff:
        Base retry penalty in cycles; attempt ``k`` costs
        ``backoff * 2**k``.
    checkpoint_dir:
        Directory for durable on-disk checkpoints (None: in-memory
        rollback only, the pre-durability behaviour).  Setting it turns
        on periodic disk captures (every ``checkpoint_interval`` rounds,
        defaulting to
        :attr:`repro.resilience.durable.DurableCheckpointManager.DEFAULT_INTERVAL`),
        a run manifest, the spill journal on the sliced engine, and
        graceful SIGINT/SIGTERM unwinding.
    run_meta:
        Workload identity recorded in the durable manifest (the CLI
        passes ``{"workload": ..., "engine_options": ...}``) so
        ``repro resume`` can rebuild the run.
    resume:
        True when this configuration continues an existing run
        directory (opens the manifest instead of creating it).
    substrate:
        Which durable-substrate backend holds the run's checkpoints,
        manifest and spill journal (``"fs"`` — the default, survives
        process death — or ``"memory"``, the in-process conformance
        backend used by protocol tests).
    """

    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    checkpoint_interval: Optional[int] = None
    checkpoint_keep: int = 2
    invariant_tolerance: Optional[float] = None
    max_repair_epochs: int = 25
    max_rollbacks: int = 2
    no_progress_rounds: Optional[int] = None
    overflow_limit: float = 1e30
    dram_max_retries: int = 4
    dram_retry_backoff: float = 8.0
    checkpoint_dir: Optional[str] = None
    run_meta: Optional[Mapping[str, Any]] = None
    resume: bool = False
    substrate: str = "fs"


class ResilienceHarness:
    """Per-run resilience state attached to one engine instance."""

    def __init__(
        self,
        config: ResilienceConfig,
        spec: AlgorithmSpec,
        graph: CSRGraph,
        engine: str,
        residual_band: Optional[float] = None,
    ):
        self.config = config
        self.spec = spec
        self.graph = graph
        self.engine = engine
        #: multiplier on the per-edge fault-free residual band; engines
        #: whose schedule widens the quiescent tail (sliced dispatch
        #: modes) pass their own factor, None keeps the engine-name
        #: heuristic in _tolerances
        self.residual_band = residual_band
        self.injector = FaultInjector(config.fault_plan)
        self.durable = None  #: DurableCheckpointManager when checkpoint_dir set
        self.journal = None  #: live spill-journal writer on durable sliced runs
        self.substrate = None  #: Substrate when checkpoint_dir set
        if config.checkpoint_dir is not None:
            # lazy import: durability is optional machinery and ``durable``
            # itself imports back through the resilience package
            from .durable import DurableCheckpointManager, build_manifest
            from .substrate import build_substrate

            self.substrate = build_substrate(config.substrate)
            store = self.substrate.checkpoint_store(config.checkpoint_dir)
            if config.resume:
                store.open()
            else:
                store.create(build_manifest(config, graph, engine, spec))
            interval = (
                config.checkpoint_interval
                if config.checkpoint_interval is not None
                else DurableCheckpointManager.DEFAULT_INTERVAL
            )
            self.durable = DurableCheckpointManager(
                interval,
                keep=config.checkpoint_keep,
                store=store,
                engine=engine,
                algorithm=spec.name,
                queue_kind=(
                    "spill" if engine in ("sliced", "sliced-mp") else "bins"
                ),
            )
            if config.resume:
                self.durable.taken = store.next_seq()
            self.checkpoints: CheckpointManager = self.durable
        else:
            self.checkpoints = CheckpointManager(
                config.checkpoint_interval, keep=config.checkpoint_keep
            )
        self.watchdog: Optional[ProgressWatchdog] = None
        self.detections: Dict[str, int] = {}
        self.repair_epochs = 0
        self.reinjected = 0
        self.resets = 0
        self.degraded_lanes: List[int] = []
        self.first_quiescent_at: Optional[float] = None
        self.overhead: float = 0.0
        self.dram_retries = 0
        self._tolerance: Optional[np.ndarray] = None
        self._inject_active = config.fault_plan.any_event_faults

    # -- detection bookkeeping -----------------------------------------
    def _detected(self, mechanism: str, at: float, vertex: int = -1, **extra: Any) -> None:
        self.detections[mechanism] = self.detections.get(mechanism, 0) + 1
        if obs_trace.ACTIVE is not None:
            probe.fault_detected(mechanism, at, vertex=vertex, **extra)

    # -- site: queue insertion -----------------------------------------
    def filter_insert(self, event: Event, at: float) -> Sequence[Event]:
        """Apply insertion fault models; returns the surviving events."""
        if not self._inject_active:
            return (event,)
        return self.injector.on_insert(event, at)

    # -- site: bin drain (parity) --------------------------------------
    def payload_ok(self, event: Event, at: float) -> bool:
        """Bin-SRAM parity check; False means discard the payload."""
        if self.injector.payload_ok(event):
            return True
        self._detected("parity", at, vertex=event.vertex)
        return False

    # -- site: reduce write-back (NaN/overflow guard) ------------------
    def guard_value(self, vertex: int, value: float, at: float) -> Tuple[bool, float]:
        """Validate a reduce result before it reaches vertex state.

        Returns ``(ok, value)``; on failure the value is replaced by the
        reduce identity (quarantine) and the caller must not propagate.
        """
        if not state_invalid(value, self.spec.identity, self.config.overflow_limit):
            return True, value
        self._detected("guard", at, vertex=vertex, value=repr(value))
        return False, self.spec.identity

    # -- site: DRAM read (transient error + retry) ---------------------
    def dram_delay(self, at: float) -> float:
        """Extra cycles spent retrying this read (0.0 on the fast path)."""
        if (
            self.config.fault_plan.rate("dram") <= 0.0
            and "dram" not in self.config.fault_plan.scripted
        ):
            return 0.0
        if not self.injector.dram_error(at):
            return 0.0
        self._detected("dram-crc", at)
        penalty = 0.0
        for attempt in range(self.config.dram_max_retries):
            penalty += self.config.dram_retry_backoff * (2.0**attempt)
            if not self.injector.dram_error(at + penalty):
                self.dram_retries += attempt + 1
                if obs_trace.ACTIVE is not None:
                    probe.recovery_span(
                        "dram-retry", at, at + penalty, attempts=attempt + 1
                    )
                return penalty
            self._detected("dram-crc", at + penalty)
        raise UnrecoverableFaultError(
            f"DRAM read failed after {self.config.dram_max_retries} retries",
            at=at,
            retries=self.config.dram_max_retries,
        )

    # -- site: inter-slice spill buffer --------------------------------
    def spill_lost(self, event: Event, at: float) -> bool:
        return self.injector.spill_lost(event, at)

    # -- site: event-processor dispatch --------------------------------
    def alive_lanes(self, num_lanes: int, now: float) -> List[int]:
        """Lanes still eligible for dispatch at cycle ``now``.

        The first time a lane is seen dead the harness emits the full
        fault -> detect -> recover triple (the detection models the
        lane's heartbeat timeout; the recovery span is its removal from
        the dispatch arbiter).
        """
        alive = []
        for lane in range(num_lanes):
            if self.injector.lane_dead(lane, now):
                if lane not in self.degraded_lanes:
                    self.degraded_lanes.append(lane)
                    if obs_trace.ACTIVE is not None:
                        probe.fault_injected("lane", now, detail=f"lane={lane}")
                    self._detected("lane", now, lane=lane)
                    if obs_trace.ACTIVE is not None:
                        probe.recovery_span("lane-removal", now, now, lane=lane)
            else:
                alive.append(lane)
        if not alive:
            raise UnrecoverableFaultError(
                "all event-processor lanes are dead", at=now, lanes=num_lanes
            )
        return alive

    # -- watchdog ------------------------------------------------------
    def make_watchdog(self, round_limit: int) -> ProgressWatchdog:
        self.watchdog = ProgressWatchdog(
            round_limit, self.config.no_progress_rounds
        )
        return self.watchdog

    # -- checkpoints ---------------------------------------------------
    def maybe_checkpoint(
        self,
        round_index: int,
        at: float,
        state: np.ndarray,
        queue: Any,
        totals: Optional[Mapping[str, int]] = None,
    ) -> None:
        """Capture a checkpoint when one is due after this round.

        On durable runs this is also the per-round durability barrier:
        the engine's running ``totals`` and the fault-injector cursor
        are staged for persistence, the crash-injection chaos hooks
        fire, and a pending SIGINT/SIGTERM stop request flushes a final
        checkpoint and unwinds via
        :class:`repro.errors.RunInterruptedError`.
        """
        if self.durable is not None:
            self.durable.stage(
                totals=dict(totals or {}),
                fault_cursor=self.injector.cursor(),
                journal_commit=round_index if self.journal is not None else None,
            )
        due = self.checkpoints.due(round_index)
        if due:
            self.checkpoints.take(
                round_index, at, state, queue.snapshot(), int(queue.occupancy)
            )
        if self.durable is None:
            return
        if due:
            self._maybe_compact_journal()
        self.durable.chaos_hook(round_index)
        from .durable import stop_requested

        if stop_requested():
            if not due:
                # finish-current-round semantics: the interrupt lands on
                # a round boundary with a freshly flushed checkpoint
                self.checkpoints.take(
                    round_index,
                    at,
                    state,
                    queue.snapshot(),
                    int(queue.occupancy),
                )
            last = self.checkpoints.latest
            raise RunInterruptedError(
                f"interrupted after round {round_index}; durable checkpoint "
                f"{last.index if last else '<none>'} flushed to "
                f"{self.durable.store.run_dir}",
                run_dir=str(self.durable.store.run_dir),
                checkpoint=last.index if last is not None else None,
                checkpoint_file=(
                    str(self.durable.last_path)
                    if self.durable.last_path is not None
                    else None
                ),
                round_index=round_index,
                engine=self.engine,
            )

    def _maybe_compact_journal(self) -> None:
        """Drop journal history no retained checkpoint can need.

        Runs at checkpoint boundaries (right after a durable take, when
        nothing is buffered).  The compaction floor is the **oldest**
        retained generation's commit, not the newest: the resume
        fallback ladder may adopt any retained generation, and each must
        still be able to replay the journal forward from its own commit.
        """
        if self.journal is None or self.durable is None:
            return
        entries = (self.durable.store.manifest or {}).get("checkpoints") or []
        if not entries:
            return
        boundary = entries[0].get("journal_commit")
        if boundary is None or int(boundary) <= self.journal.compacted_upto:
            return
        self.journal.compact(int(boundary), self.spec.reduce)

    def open_journal(self, num_slices: int) -> Optional[Any]:
        """The sliced engines' spill journal (None unless durable+sliced)."""
        if self.durable is None or self.engine not in ("sliced", "sliced-mp"):
            return None
        transport = self.substrate.spill_transport(
            self.durable.store.journal_path
        )
        if self.config.resume:
            self.journal = transport.open_append(num_slices)
        else:
            self.journal = transport.create(num_slices)
        return self.journal

    # -- quiescent repair ----------------------------------------------
    def note_quiescence(self, at: float) -> None:
        """Record the first time the run would have terminated."""
        if self.first_quiescent_at is None:
            self.first_quiescent_at = at

    def repair(
        self,
        state: np.ndarray,
        at: float,
        inject: Callable[[int, float], None],
        restore: Optional[Callable[[Checkpoint], None]] = None,
    ) -> bool:
        """Quiescent invariant sweep; returns True when work was queued.

        ``inject(vertex, delta)`` re-inserts a repair event (engines
        route it straight into the queue — repair traffic is treated as
        verified writes, not re-subjected to injection).  ``restore``
        applies a checkpoint when the repair budget escalates to
        rollback.  Raises :class:`UnrecoverableFaultError` once both
        budgets are exhausted.
        """
        if self.spec.local_target is None:
            return False  # algorithm publishes no invariant; nothing to check
        plan = compute_repairs(
            self.spec, self.graph, state, tolerance=self._tolerances()
        )
        if plan.is_clean:
            return False
        suspects = plan.detected or plan.suspects
        self._detected(
            "invariant",
            at,
            count=len(suspects),
            worst_residual=plan.worst_residual,
        )
        self.repair_epochs += 1
        if self.repair_epochs > self.config.max_repair_epochs:
            checkpoint = self.checkpoints.rollback()
            if (
                checkpoint is not None
                and restore is not None
                and self.checkpoints.rollbacks <= self.config.max_rollbacks
            ):
                restore(checkpoint)
                self.repair_epochs = 0
                if obs_trace.ACTIVE is not None:
                    probe.recovery_span(
                        "rollback",
                        at,
                        at,
                        checkpoint=checkpoint.index,
                        round=checkpoint.round_index,
                    )
                return True
            raise UnrecoverableFaultError(
                f"invariant repair did not converge after "
                f"{self.config.max_repair_epochs} epochs "
                f"({len(suspects)} suspect vertices remain)",
                at=at,
                suspects=suspects[:16],
                rollbacks=self.checkpoints.rollbacks,
            )
        self.resets += len(plan.resets)
        for vertex, delta in plan.injections:
            inject(vertex, delta)
        self.reinjected += len(plan.injections)
        if obs_trace.ACTIVE is not None:
            probe.recovery_span(
                "repair-epoch",
                at,
                at,
                epoch=self.repair_epochs,
                suspects=len(suspects),
                injected=len(plan.injections),
                resets=len(plan.resets),
            )
        return True

    def _tolerances(self) -> Any:
        """Per-vertex additive residual bound (scalar override wins)."""
        if self.config.invariant_tolerance is not None:
            return self.config.invariant_tolerance
        if self._tolerance is None:
            in_degree = self.graph.in_degrees()
            per_edge = max(self.spec.residual_tolerance, 0.0)
            band = self.residual_band
            if band is None:
                # the sliced runtime re-drains each slice to quiescence
                # every activation, so sub-threshold tails accumulate
                # over more, smaller rounds than the single-queue
                # engines; its fault-free residual band is
                # correspondingly wider (sliced engines normally pass
                # their dispatch-specific factor explicitly — this is
                # the fallback for direct harness construction)
                band = 4.0 if self.engine in ("sliced", "sliced-mp") else 1.0
            per_edge *= band
            self._tolerance = np.maximum(
                1e-12, per_edge * np.maximum(in_degree, 1)
            )
        return self._tolerance

    # -- reporting -----------------------------------------------------
    def finalize(self, at: float) -> None:
        """Compute recovery overhead once the run has fully terminated."""
        if self.first_quiescent_at is not None:
            self.overhead = max(0.0, at - self.first_quiescent_at)

    def summary(self) -> Dict[str, Any]:
        """JSON-serializable account of the run's resilience activity."""
        summary = {
            "faults": {
                "total": self.injector.total_faults(),
                "by_kind": dict(sorted(self.injector.counts.items())),
            },
            "detections": dict(sorted(self.detections.items())),
            "repair": {
                "epochs": self.repair_epochs,
                "reinjected_events": self.reinjected,
                "reset_vertices": self.resets,
            },
            "checkpoints": {
                "taken": self.checkpoints.taken,
                "rollbacks": self.checkpoints.rollbacks,
            },
            "dram_retries": self.dram_retries,
            "degraded_lanes": list(self.degraded_lanes),
            "recovery_overhead": self.overhead,
        }
        if self.durable is not None:
            summary["durable"] = {
                "run_dir": str(self.durable.store.run_dir),
                "checkpoints_written": self.durable.written,
                "last_checkpoint": (
                    str(self.durable.last_path)
                    if self.durable.last_path is not None
                    else None
                ),
                "journal_commits": (
                    self.journal.commits if self.journal is not None else None
                ),
                "journal_compactions": (
                    self.journal.compactions
                    if self.journal is not None
                    else None
                ),
                "journal_records_dropped": (
                    self.journal.records_dropped
                    if self.journal is not None
                    else None
                ),
            }
        return summary
