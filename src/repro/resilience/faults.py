"""Deterministic seeded fault injection (the attack side of resilience).

Hardware-accelerator soft-error studies inject faults at architecturally
meaningful sites and measure whether the computation still converges.
The GraphPulse event model exposes five such sites, and each is a fault
*kind* here:

``drop``
    An event vanishes at queue insertion (a lost flit / overwritten
    slot).  Silent — only the quiescent invariant check can see it.
``duplicate``
    An event is inserted twice (a replayed flit).  Harmless for
    idempotent (min/max) reduce operators, a conservation violation for
    additive ones.
``bitflip``
    One bit of the payload flips in bin storage (an SRAM soft error).
    Bin SRAM carries parity, so a single flip is detected when the
    coalescer next reads the slot and the payload is discarded
    (= a *detected* drop); ``parity_coverage`` < 1 models multi-bit
    escapes that silently corrupt vertex state instead.
``dram``
    A transient error on a DRAM read burst (CRC-detected on the bus).
    Recovered by bounded exponential-backoff retry.
``spill``
    A spilled inter-slice event is lost between slices (a dropped DRAM
    page write).  Silent, like ``drop``, but only exists in the sliced
    runtime.

A sixth fault — a *dead event-processor lane* — is not a per-event rate
but a scripted kill time per lane (``FaultPlan.dead_lanes``).

Determinism.  Every kind draws from its own ``numpy`` generator seeded
from ``(seed, kind)``, and decisions are consumed in simulation order,
so a campaign with the same seed and workload injects byte-identical
fault sequences.  ``scripted`` pins exact fault opportunities (the
n-th insertion, with a chosen bit for flips) for targeted tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.event import Event
from ..obs import probe
from ..obs import trace as obs_trace

__all__ = ["FAULT_KINDS", "FaultPlan", "FaultRecord", "FaultInjector"]

#: the per-event fault kinds (dead lanes are scripted per lane, not drawn)
FAULT_KINDS = ("drop", "duplicate", "bitflip", "dram", "spill")


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible description of which faults to inject.

    Parameters
    ----------
    seed:
        Root seed of the per-kind decision streams.
    rates:
        Per-opportunity fault probability by kind (missing kinds: 0.0).
    dead_lanes:
        ``lane -> cycle`` map: the event processor dies at that cycle
        and never dispatches again.
    scripted:
        ``kind -> {opportunity_index: bit}`` forcing a fault at exact
        opportunity counts (0-based).  ``bit`` selects the flipped bit
        for ``bitflip`` (use -1 for "draw from the stream"); it is
        ignored for other kinds.
    parity_coverage:
        Probability that a ``bitflip`` is caught by the bin-SRAM parity
        when the slot is next read (1.0 = single-bit model, always
        detected).
    """

    seed: int = 0
    rates: Mapping[str, float] = field(default_factory=dict)
    dead_lanes: Mapping[int, int] = field(default_factory=dict)
    scripted: Mapping[str, Mapping[int, int]] = field(default_factory=dict)
    parity_coverage: float = 1.0

    def __post_init__(self) -> None:
        for kind in self.rates:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                )
        for kind, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {kind!r} must be in [0, 1]")
        if not 0.0 <= self.parity_coverage <= 1.0:
            raise ValueError("parity_coverage must be in [0, 1]")

    @classmethod
    def uniform(
        cls,
        rate: float,
        *,
        seed: int = 0,
        kinds: Tuple[str, ...] = FAULT_KINDS,
        dead_lanes: Optional[Mapping[int, int]] = None,
        parity_coverage: float = 1.0,
    ) -> "FaultPlan":
        """One rate across ``kinds`` (the campaign's standard shape)."""
        return cls(
            seed=seed,
            rates={k: rate for k in kinds},
            dead_lanes=dict(dead_lanes or {}),
            parity_coverage=parity_coverage,
        )

    def rate(self, kind: str) -> float:
        return float(self.rates.get(kind, 0.0))

    @property
    def any_event_faults(self) -> bool:
        return any(self.rate(k) > 0 for k in FAULT_KINDS) or bool(self.scripted)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form for the durable run manifest."""
        return {
            "seed": int(self.seed),
            "rates": {k: float(v) for k, v in self.rates.items()},
            "dead_lanes": {str(k): int(v) for k, v in self.dead_lanes.items()},
            "scripted": {
                kind: {str(i): int(bit) for i, bit in hits.items()}
                for kind, hits in self.scripted.items()
            },
            "parity_coverage": float(self.parity_coverage),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (manifest resume)."""
        return cls(
            seed=int(data.get("seed", 0)),
            rates=dict(data.get("rates", {})),
            dead_lanes={
                int(k): int(v) for k, v in data.get("dead_lanes", {}).items()
            },
            scripted={
                kind: {int(i): int(bit) for i, bit in hits.items()}
                for kind, hits in data.get("scripted", {}).items()
            },
            parity_coverage=float(data.get("parity_coverage", 1.0)),
        )


@dataclass
class FaultRecord:
    """One injected fault (campaign reporting / trace cross-check)."""

    kind: str
    at: float  #: engine time (cycles or round index) of the injection
    vertex: int = -1  #: affected vertex (-1 when not vertex-addressed)
    detail: str = ""


class FaultInjector:
    """Draws fault decisions and applies payload corruption.

    The injector is pure policy: engines ask it at each opportunity
    ("I am about to insert this event", "this DRAM read completed") and
    apply the outcome themselves, so the fault model stays in one place
    and the engines stay one guarded branch away from the fault-free
    path.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rngs: Dict[str, np.random.Generator] = {
            kind: np.random.default_rng((plan.seed, index))
            for index, kind in enumerate(FAULT_KINDS)
        }
        #: parity-escape draws get their own stream so coverage changes
        #: do not perturb the injection sequence itself
        self._parity_rng = np.random.default_rng((plan.seed, len(FAULT_KINDS)))
        self._bit_rng = np.random.default_rng((plan.seed, len(FAULT_KINDS) + 1))
        self._opportunities: Dict[str, int] = {k: 0 for k in FAULT_KINDS}
        # scalar draws consumed per stream, so a durable resume can
        # fast-forward the generators to the exact same point
        self._draws: Dict[str, int] = {k: 0 for k in FAULT_KINDS}
        self._parity_draws = 0
        self._bit_draws = 0
        self.records: List[FaultRecord] = []
        self.counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def decide(self, kind: str) -> Tuple[bool, int]:
        """Consume one opportunity of ``kind``; returns (fault?, bit).

        ``bit`` is only meaningful for ``bitflip`` opportunities (-1
        means "draw one").
        """
        index = self._opportunities[kind]
        self._opportunities[kind] = index + 1
        scripted = self.plan.scripted.get(kind)
        if scripted is not None and index in scripted:
            return True, int(scripted[index])
        rate = self.plan.rate(kind)
        if rate <= 0.0:
            return False, -1
        self._draws[kind] += 1
        return bool(self._rngs[kind].random() < rate), -1

    def _record(self, kind: str, at: float, vertex: int, detail: str = "") -> None:
        self.records.append(FaultRecord(kind, at, vertex, detail))
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if obs_trace.ACTIVE is not None:
            probe.fault_injected(kind, at, vertex=vertex, detail=detail)

    # ------------------------------------------------------------------
    # Site: queue insertion (drop / duplicate / bitflip)
    # ------------------------------------------------------------------
    def on_insert(self, event: Event, at: float) -> List[Event]:
        """Filter one event through the insertion fault models.

        Returns the list of events that actually reach the queue: empty
        on a drop, two on a duplication, one (possibly corrupted) event
        otherwise.  A corrupted event is tagged so the bin parity check
        (:meth:`payload_ok`) can see it — the tag models the parity bit
        the real SRAM would carry, not oracle knowledge.
        """
        dropped, _ = self.decide("drop")
        if dropped:
            self._record("drop", at, event.vertex)
            return []
        out = [event]
        duplicated, _ = self.decide("duplicate")
        if duplicated:
            self._record("duplicate", at, event.vertex)
            out.append(
                Event(
                    vertex=event.vertex,
                    delta=event.delta,
                    generation=event.generation,
                    ready=event.ready,
                )
            )
        flipped, bit = self.decide("bitflip")
        if flipped:
            if bit < 0:
                self._bit_draws += 1
                bit = int(self._bit_rng.integers(0, 64))
            corrupted = Event(
                vertex=event.vertex,
                delta=_flip_bit(event.delta, bit),
                generation=event.generation,
                ready=event.ready,
            )
            # the parity tag: a single-bit flip always breaks parity; a
            # draw above ``parity_coverage`` models a multi-bit escape
            if self.plan.parity_coverage >= 1.0:
                parity_bad = True
            else:
                self._parity_draws += 1
                parity_bad = bool(
                    self._parity_rng.random() < self.plan.parity_coverage
                )
            corrupted._parity_bad = parity_bad  # type: ignore[attr-defined]
            self._record("bitflip", at, event.vertex, detail=f"bit={bit}")
            out[0] = corrupted
        return out

    def payload_ok(self, event: Event) -> bool:
        """The bin parity check: False when the payload must be discarded."""
        return not getattr(event, "_parity_bad", False)

    # ------------------------------------------------------------------
    # Site: DRAM read burst (transient error)
    # ------------------------------------------------------------------
    def dram_error(self, at: float) -> bool:
        """True when this read burst is hit by a transient error."""
        faulted, _ = self.decide("dram")
        if faulted:
            self._record("dram", at, -1)
        return faulted

    # ------------------------------------------------------------------
    # Site: inter-slice spill buffer
    # ------------------------------------------------------------------
    def spill_lost(self, event: Event, at: float) -> bool:
        """True when a spilled event is lost between slices."""
        lost, _ = self.decide("spill")
        if lost:
            self._record("spill", at, event.vertex)
        return lost

    # ------------------------------------------------------------------
    # Site: event-processor lanes
    # ------------------------------------------------------------------
    def lane_dead(self, lane: int, now: float) -> bool:
        """True when ``lane`` has died by cycle ``now``."""
        death = self.plan.dead_lanes.get(lane)
        return death is not None and now >= death

    def total_faults(self) -> int:
        # counts, not len(records): a durable resume restores the counts
        # from the checkpoint cursor but does not replay the record list
        return sum(self.counts.values())

    # ------------------------------------------------------------------
    # Durable-resume cursor
    # ------------------------------------------------------------------
    def cursor(self) -> Dict[str, Any]:
        """Serializable position of every decision stream.

        Captured into durable checkpoints so that a resumed run draws
        the exact same fault sequence the killed run would have drawn.
        """
        return {
            "opportunities": dict(self._opportunities),
            "draws": dict(self._draws),
            "parity_draws": self._parity_draws,
            "bit_draws": self._bit_draws,
            "counts": dict(self.counts),
        }

    def restore_cursor(self, cursor: Mapping[str, Any]) -> None:
        """Fast-forward freshly-seeded streams to a :meth:`cursor`.

        The generators are advanced by repeating the *same scalar calls*
        the original run made — numpy does not guarantee that one bulk
        draw is stream-equivalent to n scalar draws, so no shortcut.
        """
        draws = {k: int(v) for k, v in cursor.get("draws", {}).items()}
        for kind, count in draws.items():
            rng = self._rngs[kind]
            for _ in range(count):
                rng.random()
        for _ in range(int(cursor.get("parity_draws", 0))):
            self._parity_rng.random()
        for _ in range(int(cursor.get("bit_draws", 0))):
            self._bit_rng.integers(0, 64)
        self._opportunities = {
            k: int(v) for k, v in cursor.get("opportunities", {}).items()
        }
        for kind in FAULT_KINDS:
            self._opportunities.setdefault(kind, 0)
            draws.setdefault(kind, 0)
        self._draws = draws
        self._parity_draws = int(cursor.get("parity_draws", 0))
        self._bit_draws = int(cursor.get("bit_draws", 0))
        self.counts = {k: int(v) for k, v in cursor.get("counts", {}).items()}


def _flip_bit(value: float, bit: int) -> float:
    """Flip one bit of the IEEE-754 double representation of ``value``."""
    raw = np.float64(value).view(np.uint64)
    return float((raw ^ np.uint64(1) << np.uint64(bit & 63)).view(np.float64))
