"""Cross-host failover harness: SIGKILL a supervisor, another finishes.

The ``sliced-hosts`` engine's end-to-end proof, the cross-host analogue
of :mod:`repro.resilience.crash`.  Where the crash harness kills one
process and *resumes the same run directory*, this harness kills one of
several independent **supervisor processes** sharing a substrate
directory and lets a *different* host carry the run to convergence:

1. an uninterrupted **reference** run on the sequential ``sliced``
   engine dumps its final values (``--dump-values``, raw float64 bits);
2. a **victim** supervisor runs ``--engine sliced-hosts`` alone and is
   SIGKILLed from inside a step (``REPRO_KILL_HOST=STEP:POINT`` — the
   point selects which publish the death interrupts: before any,
   between the journal commit and the shard, or between the shard and
   the cursor, i.e. each distinct takeover case);
3. a **survivor** supervisor is pointed at the same directory; it must
   observe the dead peer's lease, fence its epoch (``break_stale``),
   finish the remaining steps and dump its values;
4. the trial passes iff the survivor's value file is **byte-identical**
   to the sequential reference, the pass counts match, and the survivor
   reports at least one fenced takeover.

:func:`run_host_pair_trial` is the live-concurrency complement: two
supervisors race on the same directory with nobody killed, proving the
lease protocol serializes them onto the exact sequential schedule.
"""

from __future__ import annotations

import json
import signal
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from .crash import _run_cli, _subprocess_env, repro_command

__all__ = [
    "HostFailoverTrial",
    "HostPairTrial",
    "run_host_failover_trial",
    "run_host_pair_trial",
]


def _workload_args(
    algorithm: str, dataset: str, scale: float
) -> list:
    return [algorithm, "--dataset", dataset, "--scale", str(scale)]


def _hosts_args(
    hosts_dir: Path, host_id: str, num_slices: int, lease_timeout: float
) -> list:
    return [
        "--engine",
        "sliced-hosts",
        "--num-slices",
        str(num_slices),
        "--hosts-dir",
        str(hosts_dir),
        "--host-id",
        host_id,
        "--lease-timeout",
        str(lease_timeout),
    ]


@dataclass
class HostFailoverTrial:
    """One kill-the-host cell."""

    algorithm: str
    dataset: str
    scale: float
    num_slices: int
    kill_step: int
    kill_point: str
    #: the victim actually died to SIGKILL mid-step (False: it finished
    #: the run before reaching the kill step)
    killed: bool = False
    survivor_returncode: Optional[int] = None
    bit_identical: bool = False
    passes_match: bool = False
    reference_passes: Optional[int] = None
    survivor_passes: Optional[int] = None
    #: stale epochs the survivor fenced (must be >= 1 after a kill)
    takeovers: Optional[int] = None
    steps_total: Optional[int] = None
    steps_by_survivor: Optional[int] = None
    error: Optional[str] = None

    @property
    def recovered(self) -> bool:
        return (
            self.killed
            and self.survivor_returncode == 0
            and self.bit_identical
            and self.passes_match
            and bool(self.takeovers)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "scale": self.scale,
            "num_slices": self.num_slices,
            "kill_step": self.kill_step,
            "kill_point": self.kill_point,
            "killed": self.killed,
            "survivor_returncode": self.survivor_returncode,
            "bit_identical": self.bit_identical,
            "passes_match": self.passes_match,
            "reference_passes": self.reference_passes,
            "survivor_passes": self.survivor_passes,
            "takeovers": self.takeovers,
            "steps_total": self.steps_total,
            "steps_by_survivor": self.steps_by_survivor,
            "recovered": self.recovered,
            "error": self.error,
        }


def run_host_failover_trial(
    algorithm: str,
    *,
    dataset: str = "WG",
    scale: float = 0.05,
    num_slices: int = 3,
    kill_step: int = 7,
    kill_point: str = "journal",
    lease_timeout: float = 1.0,
    work_dir: Path,
) -> HostFailoverTrial:
    """SIGKILL one supervisor mid-step; a fresh one must finish the run.

    The victim runs alone first so the kill deterministically fires at
    ``kill_step`` (with a racing peer, whichever host claims the step
    executes it, and the kill might never trigger).  Dying inside a
    step means dying while *holding that step's lease*, so the survivor
    is forced through the full fencing path: observe the dead pid,
    ``break_stale`` the slot, re-acquire at a higher epoch, and replay
    or redo whatever the victim half-published.
    """
    trial = HostFailoverTrial(
        algorithm=algorithm,
        dataset=dataset,
        scale=scale,
        num_slices=num_slices,
        kill_step=kill_step,
        kill_point=kill_point,
    )
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    workload = _workload_args(algorithm, dataset, scale)

    # 1. sequential reference: the oracle the survivor must match
    ref_values = work_dir / "reference.npy"
    proc = _run_cli(
        [
            "run",
            *workload,
            "--engine",
            "sliced",
            "--num-slices",
            str(num_slices),
            # sliced-hosts executes slices strictly in sequence (step k
            # = slice k % N), so the bit-identity reference must use
            # the chained order, not the barrier default
            "--dispatch",
            "chained",
            "--dump-values",
            str(ref_values),
            "--json",
            "-",
        ]
    )
    if proc.returncode != 0:
        trial.error = f"reference run failed: {proc.stderr.strip()}"
        return trial
    trial.reference_passes = json.loads(proc.stdout)["result"]["passes"]

    # 2. the victim: killed while holding the step's lease
    hosts_dir = work_dir / "hosts"
    proc = _run_cli(
        [
            "run",
            *workload,
            *_hosts_args(hosts_dir, "victim", num_slices, lease_timeout),
        ],
        extra_env={"REPRO_KILL_HOST": f"{kill_step}:{kill_point}"},
    )
    trial.killed = proc.returncode == -signal.SIGKILL
    if not trial.killed:
        trial.error = (
            f"victim finished (rc {proc.returncode}) before step "
            f"{kill_step}; pick an earlier kill step"
        )
        return trial

    # 3. the survivor: must fence the dead epoch and finish
    survived_values = work_dir / "survived.npy"
    proc = _run_cli(
        [
            "run",
            *workload,
            *_hosts_args(hosts_dir, "survivor", num_slices, lease_timeout),
            "--dump-values",
            str(survived_values),
            "--json",
            "-",
        ]
    )
    trial.survivor_returncode = proc.returncode
    if proc.returncode != 0:
        trial.error = f"survivor failed: {proc.stderr.strip()}"
        return trial
    summary = json.loads(proc.stdout)
    trial.survivor_passes = summary["result"]["passes"]
    trial.passes_match = trial.survivor_passes == trial.reference_passes
    stats = summary["result"]["stats"]
    trial.takeovers = stats["takeovers"]
    trial.steps_total = stats["steps"]
    trial.steps_by_survivor = stats["steps_executed"]

    # 4. byte-for-byte equality against the sequential oracle
    trial.bit_identical = (
        ref_values.read_bytes() == survived_values.read_bytes()
    )
    if not trial.bit_identical:
        trial.error = "survivor values differ bitwise from sequential"
    return trial


@dataclass
class HostPairTrial:
    """Two live supervisors racing on one directory, nobody killed."""

    algorithm: str
    bit_identical: bool = False
    steps_total: Optional[int] = None
    steps_by_host: Optional[Dict[str, int]] = None
    takeovers: int = 0
    error: Optional[str] = None

    @property
    def serialized(self) -> bool:
        """Both hosts saw the one sequential schedule, no false fencing."""
        return (
            self.error is None
            and self.bit_identical
            and self.takeovers == 0
        )


def run_host_pair_trial(
    algorithm: str,
    *,
    dataset: str = "WG",
    scale: float = 0.05,
    num_slices: int = 3,
    lease_timeout: float = 2.0,
    timeout: float = 300.0,
    work_dir: Path,
) -> HostPairTrial:
    """Race two live supervisors on one substrate directory.

    Both must converge to values byte-identical to the sequential
    ``sliced`` oracle, and neither may fence the other (takeovers stay
    zero): with every peer alive and heartbeating, lease contention is
    resolved purely by acquisition, never by epoch breaking.
    """
    trial = HostPairTrial(algorithm=algorithm)
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    workload = _workload_args(algorithm, dataset, scale)

    ref_values = work_dir / "reference.npy"
    proc = _run_cli(
        [
            "run",
            *workload,
            "--engine",
            "sliced",
            "--num-slices",
            str(num_slices),
            # chained order: the sliced-hosts substrate the pair races
            # on executes slices sequentially (see run_host_failover_trial)
            "--dispatch",
            "chained",
            "--dump-values",
            str(ref_values),
        ]
    )
    if proc.returncode != 0:
        trial.error = f"reference run failed: {proc.stderr.strip()}"
        return trial

    hosts_dir = work_dir / "hosts"
    procs = {}
    for host in ("a", "b"):
        values = work_dir / f"host-{host}.npy"
        procs[host] = (
            subprocess.Popen(
                repro_command(
                    "run",
                    *workload,
                    *_hosts_args(hosts_dir, host, num_slices, lease_timeout),
                    "--dump-values",
                    str(values),
                    "--json",
                    "-",
                ),
                env=_subprocess_env(),
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            ),
            values,
        )
    steps_by_host: Dict[str, int] = {}
    reference_bytes = ref_values.read_bytes()
    trial.bit_identical = True
    for host, (proc, values) in procs.items():
        try:
            stdout, stderr = proc.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.communicate()
            trial.error = f"host {host} timed out"
            return trial
        if proc.returncode != 0:
            trial.error = f"host {host} failed: {stderr.strip()}"
            return trial
        stats = json.loads(stdout)["result"]["stats"]
        steps_by_host[host] = stats["steps_executed"]
        trial.steps_total = stats["steps"]
        trial.takeovers += stats["takeovers"]
        if values.read_bytes() != reference_bytes:
            trial.bit_identical = False
            trial.error = f"host {host} values differ from sequential"
    trial.steps_by_host = steps_by_host
    return trial
