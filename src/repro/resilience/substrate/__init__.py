"""Transport-neutral durable substrate: interfaces + backend registry.

See :mod:`repro.resilience.substrate.base` for the contract, ``fs`` for
the production filesystem backend and ``memory`` for the byte-backed
conformance twin.  Consumers pick a backend by name::

    from repro.resilience.substrate import build_substrate

    substrate = build_substrate("fs")
    store = substrate.checkpoint_store(run_dir)
    journal = substrate.spill_transport(store.journal_path).create(n)
"""

from __future__ import annotations

from .base import (
    SUBSTRATE_BACKENDS,
    CheckpointStore,
    HeldLease,
    LeaseStore,
    SpillTransport,
    Substrate,
    build_substrate,
)
from .fs import FsCheckpointStore, FsLeaseStore, FsSpillTransport, FsSubstrate
from .memory import (
    MemoryCheckpointStore,
    MemoryLeaseStore,
    MemorySpillJournal,
    MemorySpillTransport,
    MemorySubstrate,
)

__all__ = [
    "HeldLease",
    "LeaseStore",
    "SpillTransport",
    "CheckpointStore",
    "Substrate",
    "SUBSTRATE_BACKENDS",
    "build_substrate",
    "FsLeaseStore",
    "FsSpillTransport",
    "FsCheckpointStore",
    "FsSubstrate",
    "MemoryLeaseStore",
    "MemorySpillTransport",
    "MemorySpillJournal",
    "MemoryCheckpointStore",
    "MemorySubstrate",
]

SUBSTRATE_BACKENDS["fs"] = FsSubstrate
SUBSTRATE_BACKENDS["memory"] = MemorySubstrate
