"""The durable-substrate interfaces: leases, spill transport, checkpoints.

Everything the resilient engines persist flows through three narrow
interfaces, so the *protocol* (epoch-fenced slice ownership, GPJL
write-ahead spill logging, GPCK checkpoint generations) is separated
from the *medium* it happens to live on:

:class:`LeaseStore` / :class:`HeldLease`
    Crash-detectable slice ownership: atomic exclusive acquisition,
    monotonic heartbeat counters, staleness observation, and
    ``break_stale`` fencing.  One store covers one lease namespace (a
    directory for the fs backend).

:class:`SpillTransport`
    The write-ahead journal of inter-slice spill traffic.  Every
    backend speaks the same GPJL wire format (encoded and decoded by
    the ``repro.resilience.journal`` byte codec), so torn-tail
    tolerance, CRC validation and replay coalescing are provably
    identical across backends.

:class:`CheckpointStore`
    GPCK checkpoint generations plus the manifest index — create /
    open / write / load / the fallback generation ladder
    (``drop_newer_than``).

:class:`Substrate` bundles the three factories for one backend;
:func:`build_substrate` is the registry.  Two backends ship:

``fs``
    The durable filesystem implementation — lease files, ``journal.bin``,
    a run directory of ``checkpoint-NNNNNN.ckpt`` files.  This is the
    production backend; everything it persists survives SIGKILL.

``memory``
    Byte-backed stores with *identical* failure semantics: lease
    payloads, the GPJL log and GPCK blobs are held as raw bytes and
    parsed through the same codecs, and every operation consults the
    global IO shim (:mod:`repro.resilience.storagefaults`) at a virtual
    path whose basename matches the fs artifact — the shim's
    *interface-boundary mode*.  It exists so the conformance suite and
    hot unit tests exercise protocol logic (fencing, replay, the
    generation ladder) without disk IO, under the same chaos plans.

Construction discipline (lint rule SUB-001): the concrete primitives —
``SliceLease``, ``SpillJournal``, ``DurableCheckpointStore`` — are only
ever constructed inside this package (and the engine registry); every
other consumer goes through a :class:`Substrate`, which is what keeps a
backend swap a one-line change.
"""

from __future__ import annotations

import abc
import os
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..journal import JournalScan
from ..lease import DEFAULT_LEASE_TIMEOUT, LeaseInfo

__all__ = [
    "HeldLease",
    "LeaseStore",
    "SpillTransport",
    "CheckpointStore",
    "Substrate",
    "SUBSTRATE_BACKENDS",
    "build_substrate",
]

PathLike = Union[str, os.PathLike]
ReduceFn = Callable[[float, float], float]
Observations = Dict[str, Tuple[int, float]]


class HeldLease(abc.ABC):
    """One held slice lease: heartbeat it, release it.

    Implementations expose ``info`` (the :class:`LeaseInfo` last
    published) and ``path`` (the artifact's real or virtual location,
    for diagnostics).
    """

    info: LeaseInfo

    @abc.abstractmethod
    def refresh(self) -> None:
        """Heartbeat: publish the payload with the counter incremented.

        Must not resurrect a broken (fenced) lease — if the lease was
        removed from under the holder, refresh is a silent no-op and the
        next acquisition conflict reports the loss.
        """

    @abc.abstractmethod
    def release(self) -> None:
        """Give the slice up cleanly (idempotent)."""


class LeaseStore(abc.ABC):
    """Crash-detectable slice ownership over one lease namespace."""

    @abc.abstractmethod
    def acquire(
        self,
        slice_index: int,
        *,
        owner: str,
        pid: Optional[int] = None,
        epoch: int = 0,
    ) -> HeldLease:
        """Atomically claim a slice; :class:`repro.errors.LeaseHeldError`
        if any holder — live or dead — already has it."""

    @abc.abstractmethod
    def read(self, slice_index: int) -> Optional[LeaseInfo]:
        """The current holder's payload, or ``None`` if absent/unreadable."""

    @abc.abstractmethod
    def is_stale(
        self,
        slice_index: int,
        *,
        timeout: float = DEFAULT_LEASE_TIMEOUT,
        observations: Optional[Observations] = None,
    ) -> bool:
        """Whether the lease has a dead or heartbeat-silent owner.

        ``observations`` is the caller-owned counter cache of
        :func:`repro.resilience.lease.is_stale` — pollers passing the
        same dict get mtime-independent counter staleness.
        """

    @abc.abstractmethod
    def break_stale(
        self,
        slice_index: int,
        *,
        timeout: float = DEFAULT_LEASE_TIMEOUT,
        observations: Optional[Observations] = None,
    ) -> bool:
        """Remove a stale lease (fencing the old epoch); ``True`` when
        one was removed, :class:`repro.errors.LeaseHeldError` when the
        holder is alive and heartbeating."""


class SpillTransport(abc.ABC):
    """One GPJL write-ahead spill log, whatever medium holds the bytes.

    ``create``/``open_append`` return the live journal writer (the
    ``SpillJournal`` recording surface: ``spill`` / ``consume`` /
    ``commit`` / ``reset`` / ``discard_uncommitted`` / ``compact`` /
    ``close`` plus the lifecycle counters); the remaining methods are
    the read-only recovery surface and are safe from any process.
    """

    @abc.abstractmethod
    def exists(self) -> bool:
        """Whether the log has been created."""

    @abc.abstractmethod
    def create(self, num_slices: int) -> Any:
        """Start a fresh journal (truncating any previous log)."""

    @abc.abstractmethod
    def open_append(self, num_slices: int) -> Any:
        """Reopen the log for appending (resume path); validates the
        header against ``num_slices``."""

    @abc.abstractmethod
    def scan(
        self, num_slices: int, upto: Optional[int], reduce_fn: ReduceFn
    ) -> JournalScan:
        """Replay to commit ``upto`` with recovery provenance; identical
        torn-tail / CRC semantics on every backend (``scan_bytes``)."""

    def replay(
        self, num_slices: int, upto: Optional[int], reduce_fn: ReduceFn
    ) -> Tuple[List[Dict[int, Tuple[float, int]]], int]:
        """``(buffers, offset)`` as of commit ``upto`` (scan, minus the
        bookkeeping)."""
        scan = self.scan(num_slices, upto, reduce_fn)
        return scan.buffers, scan.offset

    @abc.abstractmethod
    def truncate(self, offset: int) -> None:
        """Discard everything past ``offset`` (the torn tail) in place."""

    @abc.abstractmethod
    def compact_file(
        self, num_slices: int, upto: int, reduce_fn: ReduceFn
    ) -> Dict[str, int]:
        """Re-baseline the durable log at commit ``upto`` (closed log)."""


class CheckpointStore(abc.ABC):
    """GPCK checkpoint generations + manifest index for one run.

    The interface is exactly the surface of
    :class:`repro.resilience.durable.DurableCheckpointStore` (which is
    also the shared implementation — backends override only its five IO
    primitives), registered virtually so ``isinstance`` checks hold
    without a metaclass dance.
    """

    @classmethod
    def __subclasshook__(cls, candidate: type) -> Any:
        if cls is not CheckpointStore:
            return NotImplemented
        required = (
            "create",
            "open",
            "write",
            "load",
            "load_latest",
            "next_seq",
            "drop_newer_than",
        )
        if all(any(m in sup.__dict__ for sup in candidate.__mro__) for m in required):
            return True
        return NotImplemented


class Substrate(abc.ABC):
    """One backend's factory bundle: leases + transport + checkpoints."""

    #: registry key ("fs", "memory")
    backend: str

    @abc.abstractmethod
    def lease_store(self, root: PathLike) -> LeaseStore:
        """The lease namespace rooted at ``root`` (a directory for fs,
        a virtual prefix for memory)."""

    @abc.abstractmethod
    def spill_transport(self, path: PathLike) -> SpillTransport:
        """The spill log living at ``path``."""

    @abc.abstractmethod
    def checkpoint_store(self, run_dir: PathLike) -> CheckpointStore:
        """The checkpoint store for the run directory ``run_dir``."""


#: backend name -> zero-argument Substrate factory; populated by the
#: backend modules at import time (see ``substrate/__init__.py``)
SUBSTRATE_BACKENDS: Dict[str, Callable[[], Substrate]] = {}


def build_substrate(backend: str = "fs") -> Substrate:
    """The one place a backend name becomes a :class:`Substrate`."""
    try:
        factory = SUBSTRATE_BACKENDS[backend]
    except KeyError:
        from ...errors import ReproError

        raise ReproError(
            f"unknown substrate backend {backend!r}; registered backends: "
            f"{', '.join(sorted(SUBSTRATE_BACKENDS))}"
        ) from None
    return factory()
