"""The filesystem substrate backend — the production durable medium.

Thin bindings of the existing primitives to the substrate interfaces:
lease files (``repro.resilience.lease``), the ``journal.bin`` GPJL log
(``repro.resilience.journal``), and the run-directory checkpoint store
(``repro.resilience.durable``).  This module is the construction
authority lint rule SUB-001 enforces: ``SliceLease`` / ``SpillJournal``
/ ``DurableCheckpointStore`` are instantiated here (and nowhere outside
the substrate package) so every consumer inherits backend neutrality.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional

from ..durable import DurableCheckpointStore
from ..journal import SpillJournal
from ..lease import (
    DEFAULT_LEASE_TIMEOUT,
    LeaseInfo,
    SliceLease,
    break_stale,
    is_stale,
    lease_path,
    read_lease,
)
from .base import (
    CheckpointStore,
    HeldLease,
    LeaseStore,
    Observations,
    PathLike,
    ReduceFn,
    SpillTransport,
    Substrate,
)

__all__ = [
    "FsLeaseStore",
    "FsSpillTransport",
    "FsCheckpointStore",
    "FsSubstrate",
]

# SliceLease already satisfies the HeldLease surface (info / refresh /
# release); register it so isinstance checks treat it as one
HeldLease.register(SliceLease)


class FsLeaseStore(LeaseStore):
    """Lease files under one directory (``slice-NNNN.lease``)."""

    def __init__(self, root: PathLike):
        self.root = Path(root)

    def acquire(
        self,
        slice_index: int,
        *,
        owner: str,
        pid: Optional[int] = None,
        epoch: int = 0,
    ) -> SliceLease:
        # the namespace is the store's responsibility, not the caller's:
        # the memory backend needs no setup, so neither may this one
        self.root.mkdir(parents=True, exist_ok=True)
        return SliceLease.acquire(
            self.root, slice_index, owner=owner, pid=pid, epoch=epoch
        )

    def read(self, slice_index: int) -> Optional[LeaseInfo]:
        return read_lease(lease_path(self.root, slice_index))

    def is_stale(
        self,
        slice_index: int,
        *,
        timeout: float = DEFAULT_LEASE_TIMEOUT,
        observations: Optional[Observations] = None,
    ) -> bool:
        return is_stale(
            lease_path(self.root, slice_index),
            timeout=timeout,
            observations=observations,
        )

    def break_stale(
        self,
        slice_index: int,
        *,
        timeout: float = DEFAULT_LEASE_TIMEOUT,
        observations: Optional[Observations] = None,
    ) -> bool:
        return break_stale(
            lease_path(self.root, slice_index),
            timeout=timeout,
            observations=observations,
        )


class FsSpillTransport(SpillTransport):
    """The GPJL journal file at one path."""

    def __init__(self, path: PathLike):
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def create(self, num_slices: int) -> SpillJournal:
        return SpillJournal.create(self.path, num_slices)

    def open_append(self, num_slices: int) -> SpillJournal:
        return SpillJournal.open_append(self.path, num_slices)

    def scan(
        self, num_slices: int, upto: Optional[int], reduce_fn: ReduceFn
    ) -> Any:
        return SpillJournal.scan(self.path, num_slices, upto, reduce_fn)

    def truncate(self, offset: int) -> None:
        SpillJournal.truncate(self.path, offset)

    def compact_file(
        self, num_slices: int, upto: int, reduce_fn: ReduceFn
    ) -> Any:
        return SpillJournal.compact_file(
            self.path, num_slices, upto, reduce_fn
        )


class FsCheckpointStore(DurableCheckpointStore):
    """The run-directory checkpoint store, unchanged.

    A subclass (not a wrapper) so every existing consumer attribute —
    ``run_dir``, ``manifest``, ``journal_path``, ``checkpoint_path`` —
    keeps working on the object the substrate hands out.
    """


class FsSubstrate(Substrate):
    """Factory bundle for the filesystem backend."""

    backend = "fs"

    def lease_store(self, root: PathLike) -> FsLeaseStore:
        return FsLeaseStore(root)

    def spill_transport(self, path: PathLike) -> FsSpillTransport:
        return FsSpillTransport(path)

    def checkpoint_store(self, run_dir: PathLike) -> FsCheckpointStore:
        return FsCheckpointStore(run_dir)


assert issubclass(FsCheckpointStore, CheckpointStore)
