"""In-memory substrate backend: same protocol, no disk.

Every store here keeps its artifacts as **raw bytes** — lease payloads
as the JSON blobs :mod:`repro.resilience.lease` publishes, the spill
log as one GPJL byte string, checkpoints as GPCK blobs with a JSON
manifest — and parses them through the exact same codecs the fs backend
uses (``parse_lease_bytes``, ``scan_bytes``/``compact_bytes``,
``serialize_checkpoint``/``deserialize_checkpoint``).  A torn commit, a
flipped lease byte or a rotted checkpoint therefore fails *identically*
on both backends, which is what lets one conformance suite
(``tests/resilience/test_substrate.py``) prove them interchangeable.

Interface-boundary chaos: each operation consults the global IO shim
(:func:`repro.ioutil.io_shim`) at a **virtual path** whose basename
matches the fs artifact (``slice-0003.lease``, ``journal.bin``,
``checkpoint-000002.ckpt``), through the same hooks the fs layer fires
— ``on_create`` at acquisition, ``on_utime`` + ``on_publish_bytes`` at
heartbeat, ``on_append`` at journal commit, ``on_publish_bytes`` at
checkpoint/manifest publish, ``on_read`` on every load.  A
:class:`repro.resilience.storagefaults.StorageFaultPlan` written
against fs paths chaos-tests this backend without modification.

This backend is intentionally in-process: it models the durable
*protocol*, not cross-process durability — a SIGKILL erases it, which
is exactly why the conformance suite covers semantics and the crash
harnesses stay on fs.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ... import ioutil
from ...errors import CheckpointCorruptError, LeaseHeldError
from ...obs import probe
from ...obs import trace as obs_trace
from ..durable import DurableCheckpointStore
from ..journal import (
    JOURNAL_MAGIC,
    JournalScan,
    compact_bytes,
    encode_commit,
    encode_consume,
    encode_header,
    encode_spill,
    scan_bytes,
)
from ..lease import DEFAULT_LEASE_TIMEOUT, LeaseInfo, parse_lease_bytes
from ..storagefaults import retry_transient
from .base import (
    HeldLease,
    LeaseStore,
    Observations,
    PathLike,
    ReduceFn,
    SpillTransport,
    Substrate,
)

__all__ = [
    "MemoryLeaseStore",
    "MemorySpillTransport",
    "MemorySpillJournal",
    "MemoryCheckpointStore",
    "MemorySubstrate",
]


# -- interface-boundary shim consultation ------------------------------
# The memory backend has no syscalls for the fault layer to wrap, so it
# consults the installed shim explicitly at each operation — the same
# hook, site and path-matching semantics as the fs choke points.


def _shim_hook(name: str) -> Optional[Callable[..., Any]]:
    shim = ioutil.io_shim()
    if shim is None:
        return None
    return getattr(shim, name, None)


def _shim_create(path: str) -> None:
    hook = _shim_hook("on_create")
    if hook is not None:
        hook(path)


def _shim_utime(path: str) -> None:
    hook = _shim_hook("on_utime")
    if hook is not None:
        hook(path)


def _shim_publish(path: str, data: bytes) -> bytes:
    hook = _shim_hook("on_publish_bytes")
    if hook is not None:
        data = hook(path, data)
    return data


def _shim_append(path: str, data: bytes) -> bytes:
    hook = _shim_hook("on_append")
    if hook is not None:
        data = hook(path, data)
    return data


def _shim_read(path: str, data: bytes) -> bytes:
    hook = _shim_hook("on_read")
    if hook is not None:
        data = hook(path, data)
    return data


# ----------------------------------------------------------------------
# Leases
# ----------------------------------------------------------------------


class MemoryHeldLease(HeldLease):
    """One held in-memory lease (see :class:`SliceLease` for the fs twin)."""

    def __init__(self, store: "MemoryLeaseStore", path: str, info: LeaseInfo):
        self.store = store
        self.path = path
        self.info = info

    def refresh(self) -> None:
        """Heartbeat: republish the payload with the counter bumped.

        Mirrors ``SliceLease.refresh`` exactly: the utime hook fires,
        transient publish errors get the bounded retry, and a broken
        (fenced) lease is never resurrected — if the slot is gone the
        refresh silently stops.
        """
        next_info = LeaseInfo(
            slice_index=self.info.slice_index,
            owner=self.info.owner,
            pid=self.info.pid,
            epoch=self.info.epoch,
            heartbeat=self.info.heartbeat + 1,
        )

        def attempt() -> None:
            _shim_utime(self.path)
            if self.info.slice_index not in self.store._slots:
                raise FileNotFoundError(self.path)
            payload = _shim_publish(
                self.path, next_info.to_json().encode("utf-8")
            )
            self.store._slots[self.info.slice_index] = payload

        try:
            retry_transient(
                attempt, description=f"lease heartbeat ({self.path})"
            )
        except FileNotFoundError:
            return  # broken from under us; the next acquire conflict reports it
        self.info = next_info

    def release(self) -> None:
        self.store._slots.pop(self.info.slice_index, None)


class MemoryLeaseStore(LeaseStore):
    """Byte-payload slice leases with counter-based staleness.

    Staleness is *always* heartbeat-counter based (there is no mtime to
    fall back on): the store keeps its own observation cache so one-shot
    callers get the same semantics pollers get by passing
    ``observations`` explicitly.
    """

    def __init__(self, root: PathLike = "mem/leases"):
        self.root = str(root)
        self._slots: Dict[int, bytes] = {}
        self._beats: Observations = {}

    def _vpath(self, slice_index: int) -> str:
        return f"{self.root}/slice-{slice_index:04d}.lease"

    def acquire(
        self,
        slice_index: int,
        *,
        owner: str,
        pid: Optional[int] = None,
        epoch: int = 0,
    ) -> MemoryHeldLease:
        info = LeaseInfo(
            slice_index=slice_index,
            owner=owner,
            pid=os.getpid() if pid is None else pid,
            epoch=epoch,
        )
        path = self._vpath(slice_index)

        def attempt() -> None:
            _shim_create(path)
            if slice_index in self._slots:
                raise FileExistsError(path)
            self._slots[slice_index] = info.to_json().encode("utf-8")

        try:
            # same discipline as the fs acquire: transient EIO/ENOSPC is
            # retried, a lost race (FileExistsError) never is
            retry_transient(attempt, description=f"lease acquire ({path})")
        except FileExistsError:
            holder = self.read(slice_index)
            raise LeaseHeldError(
                f"{path}: slice {slice_index} is already leased to "
                f"{holder.owner if holder else '<unreadable>'} "
                f"(pid {holder.pid if holder else '?'})",
                path=path,
                slice=slice_index,
                holder=None if holder is None else holder.owner,
                pid=None if holder is None else holder.pid,
            ) from None
        return MemoryHeldLease(self, path, info)

    def read(self, slice_index: int) -> Optional[LeaseInfo]:
        data = self._slots.get(slice_index)
        if data is None:
            return None
        try:
            data = _shim_read(self._vpath(slice_index), data)
        except OSError:
            return None  # unreadable == cannot prove liveness == stale
        return parse_lease_bytes(data)

    def is_stale(
        self,
        slice_index: int,
        *,
        timeout: float = DEFAULT_LEASE_TIMEOUT,
        observations: Optional[Observations] = None,
    ) -> bool:
        if slice_index not in self._slots:
            return False  # nothing to break; acquire would just succeed
        info = self.read(slice_index)
        if info is None or not _pid_alive(info.pid):
            return True
        cache = self._beats if observations is None else observations
        key = self._vpath(slice_index)
        # wall clock by design: staleness is real elapsed silence —
        # operational liveness, never part of the replayed trajectory
        # (same rationale as lease.py)  # repro: allow(DET-001)
        now = time.monotonic()
        seen = cache.get(key)
        if seen is None or seen[0] != info.heartbeat:
            # the (heartbeat, first-seen) observation cache IS the
            # staleness bookkeeping — operational lease state, never
            # replayed  # repro: allow(DET-003)
            cache[key] = (info.heartbeat, now)
            return False
        return (now - seen[1]) > timeout

    def break_stale(
        self,
        slice_index: int,
        *,
        timeout: float = DEFAULT_LEASE_TIMEOUT,
        observations: Optional[Observations] = None,
    ) -> bool:
        if slice_index not in self._slots:
            return False
        if not self.is_stale(
            slice_index, timeout=timeout, observations=observations
        ):
            info = self.read(slice_index)
            raise LeaseHeldError(
                f"{self._vpath(slice_index)}: lease is held by live owner "
                f"{info.owner if info else '<unreadable>'} "
                f"(pid {info.pid if info else '?'})",
                path=self._vpath(slice_index),
                holder=None if info is None else info.owner,
                pid=None if info is None else info.pid,
            )
        self._slots.pop(slice_index, None)
        self._beats.pop(self._vpath(slice_index), None)
        return True


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


# ----------------------------------------------------------------------
# Spill transport
# ----------------------------------------------------------------------


class MemorySpillJournal:
    """The live recording surface over a byte log (fs twin: ``SpillJournal``).

    Byte-for-byte the same WAL: records buffer in memory and reach the
    "durable" log only at :meth:`commit`, through the same ``on_append``
    shim hook and bounded retry, so an injected torn commit leaves the
    log with the identical torn tail replay must tolerate.
    """

    def __init__(self, transport: "MemorySpillTransport", num_slices: int):
        self.transport = transport
        self.path = transport.path
        self.num_slices = num_slices
        self._buffer: List[bytes] = []
        self._closed = False
        self.commits = 0
        self.records_flushed = 0
        self.bytes_flushed = 0
        self.compacted_upto = 0
        self.compactions = 0
        self.records_dropped = 0

    # -- recording ------------------------------------------------------
    def spill(
        self, slice_index: int, vertex: int, generation: int, delta: float
    ) -> None:
        self._buffer.append(
            encode_spill(slice_index, vertex, generation, delta)
        )

    def consume(self, slice_index: int) -> None:
        self._buffer.append(encode_consume(slice_index))

    def reset(self, buffers: List[Dict[int, Tuple[float, int]]]) -> None:
        self._buffer = []
        for slice_index in range(self.num_slices):
            self.consume(slice_index)
        for slice_index, bucket in enumerate(buffers):
            for vertex, (delta, generation) in bucket.items():
                self.spill(slice_index, vertex, generation, delta)

    def discard_uncommitted(self) -> None:
        self._buffer = []

    def commit(self, commit_id: int) -> None:
        self._buffer.append(encode_commit(commit_id))
        data = b"".join(self._buffer)
        records = len(self._buffer)
        self._buffer = []

        def attempt() -> bytes:
            out = _shim_append(self.path, data)
            self.transport._log_or_raise().extend(out)
            return out

        written = retry_transient(
            attempt, description=f"journal commit ({self.path})"
        )
        self.commits += 1
        self.records_flushed += records
        self.bytes_flushed += len(written)
        if obs_trace.ACTIVE is not None:
            probe.journal_flush(
                float(commit_id),
                commit=commit_id,
                records=records,
                nbytes=len(written),
            )

    def compact(self, upto: int, reduce_fn: ReduceFn) -> Dict[str, int]:
        if self._buffer:
            raise ValueError(
                "journal compaction requires a committed boundary "
                f"({len(self._buffer)} uncommitted record(s) buffered)"
            )
        stats = self.transport.compact_file(self.num_slices, upto, reduce_fn)
        self.compacted_upto = int(upto)
        self.compactions += 1
        self.records_dropped += stats["records_dropped"]
        return stats

    def close(self) -> None:
        self._closed = True


class MemorySpillTransport(SpillTransport):
    """One GPJL log held as a byte string."""

    def __init__(self, path: PathLike = "mem/journal.bin"):
        self.path = str(path)
        self._log: Optional[bytearray] = None

    def _log_or_raise(self) -> bytearray:
        if self._log is None:
            raise FileNotFoundError(self.path)
        return self._log

    def exists(self) -> bool:
        return self._log is not None

    def create(self, num_slices: int) -> MemorySpillJournal:
        self._log = bytearray(encode_header(num_slices))
        return MemorySpillJournal(self, num_slices)

    def open_append(self, num_slices: int) -> MemorySpillJournal:
        data = bytes(self._log_or_raise())
        if data[:4] != JOURNAL_MAGIC:
            raise CheckpointCorruptError(
                f"{self.path}: not a spill journal (bad magic)",
                path=self.path,
            )
        # full header validation (version + slice count) is scan_bytes's
        # first act; replaying zero records costs nothing here
        scan_bytes(
            data[: len(encode_header(num_slices))],
            num_slices,
            None,
            lambda a, b: a,
            source=self.path,
        )
        return MemorySpillJournal(self, num_slices)

    def scan(
        self, num_slices: int, upto: Optional[int], reduce_fn: ReduceFn
    ) -> JournalScan:
        data = _shim_read(self.path, bytes(self._log_or_raise()))
        return scan_bytes(data, num_slices, upto, reduce_fn, source=self.path)

    def truncate(self, offset: int) -> None:
        del self._log_or_raise()[offset:]

    def compact_file(
        self, num_slices: int, upto: int, reduce_fn: ReduceFn
    ) -> Dict[str, int]:
        data = _shim_read(self.path, bytes(self._log_or_raise()))
        blob, stats = compact_bytes(
            data, num_slices, upto, reduce_fn, source=self.path
        )

        def attempt() -> None:
            out = _shim_publish(self.path, blob)
            self._log = bytearray(out)

        retry_transient(
            attempt, description=f"journal compaction ({self.path})"
        )
        return stats


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------


class MemoryCheckpointStore(DurableCheckpointStore):
    """The run-directory store with its five IO primitives swapped out.

    All manifest bookkeeping, the write-order crash-safety argument, the
    generation ladder (``drop_newer_than``) and GPCK (de)serialization
    are literally the shared :class:`DurableCheckpointStore` code; only
    where the bytes live differs.
    """

    def __init__(self, run_dir: PathLike = "mem/run"):
        super().__init__(run_dir)
        self._files: Dict[str, bytes] = {}

    def _key(self, path: PathLike) -> str:
        return str(path)

    def _ensure_root(self) -> None:
        pass  # nothing to mkdir

    def _exists(self, path: PathLike) -> bool:
        return self._key(path) in self._files

    def _publish(self, path: PathLike, data: bytes) -> None:
        key = self._key(path)
        self._files[key] = _shim_publish(key, data)

    def _read(self, path: PathLike) -> bytes:
        key = self._key(path)
        if key not in self._files:
            raise FileNotFoundError(key)
        return _shim_read(key, self._files[key])

    def _unlink(self, path: PathLike) -> None:
        if self._files.pop(self._key(path), None) is None:
            raise FileNotFoundError(self._key(path))


# ----------------------------------------------------------------------
# The substrate
# ----------------------------------------------------------------------


class MemorySubstrate(Substrate):
    """Factory bundle for the in-memory backend.

    Stores are memoized per root/path, so two consumers asking for the
    same location share state — the property that makes the conformance
    suite's "reader sees what the writer persisted" assertions
    meaningful without a filesystem.
    """

    backend = "memory"

    def __init__(self) -> None:
        self._lease_stores: Dict[str, MemoryLeaseStore] = {}
        self._transports: Dict[str, MemorySpillTransport] = {}
        self._checkpoint_stores: Dict[str, MemoryCheckpointStore] = {}

    def lease_store(self, root: PathLike = "mem/leases") -> MemoryLeaseStore:
        key = str(root)
        if key not in self._lease_stores:
            self._lease_stores[key] = MemoryLeaseStore(key)
        return self._lease_stores[key]

    def spill_transport(
        self, path: PathLike = "mem/journal.bin"
    ) -> MemorySpillTransport:
        key = str(path)
        if key not in self._transports:
            self._transports[key] = MemorySpillTransport(key)
        return self._transports[key]

    def checkpoint_store(
        self, run_dir: PathLike = "mem/run"
    ) -> MemoryCheckpointStore:
        key = str(run_dir)
        if key not in self._checkpoint_stores:
            self._checkpoint_stores[key] = MemoryCheckpointStore(key)
        return self._checkpoint_stores[key]
