"""Arbiters for shared ports (paper Section IV-E).

The scheduler-to-processor interconnect is "a multi-staged arbiter
network": many requesters compete for grant slots, one grant per cycle
per arbiter.  With next-free-cycle semantics an arbiter is a unit
resource granting one request per cycle; a multi-stage tree composes
stages with a per-stage hop latency.
"""

from __future__ import annotations

from typing import List

from ..obs import probe
from ..obs import trace as obs_trace
from ..sim.kernel import Resource
from ..sim.stats import StatSet

__all__ = ["Arbiter", "ArbiterTree"]


class Arbiter:
    """Grants one request per cycle; extra requests queue."""

    def __init__(self, name: str, grant_latency: int = 1):
        if grant_latency < 1:
            raise ValueError("grant_latency must be >= 1")
        self.name = name
        self.grant_latency = grant_latency
        self._slot = Resource(f"{name}.slot")
        self.stats = StatSet(name)

    def request(self, at: int) -> int:
        """Request a grant at cycle ``at``; returns the grant cycle."""
        start = self._slot.acquire(at, 1)
        self.stats.add("grants")
        self.stats.add("wait_cycles", start - at)
        if obs_trace.ACTIVE is not None:
            probe.arb_grant(self.name, start, wait=start - at)
        return start + self.grant_latency

    @property
    def next_free(self) -> int:
        return self._slot.next_free


class ArbiterTree:
    """A tree of arbiters: ``fan_in`` requesters per first-stage arbiter,
    winners feed one root arbiter.  Models the paper's multi-stage
    scheduler network with ``stages = 2`` by default."""

    def __init__(
        self,
        name: str,
        num_requesters: int,
        *,
        fan_in: int = 16,
        grant_latency: int = 1,
    ):
        if num_requesters < 1:
            raise ValueError("num_requesters must be >= 1")
        if fan_in < 1:
            raise ValueError("fan_in must be >= 1")
        self.name = name
        self.fan_in = fan_in
        num_leaves = (num_requesters + fan_in - 1) // fan_in
        self.leaves: List[Arbiter] = [
            Arbiter(f"{name}.leaf{i}", grant_latency) for i in range(num_leaves)
        ]
        self.root = Arbiter(f"{name}.root", grant_latency)
        self.stats = StatSet(name)

    def request(self, requester: int, at: int) -> int:
        """Route a request through its leaf then the root; returns grant."""
        leaf = self.leaves[requester // self.fan_in]
        granted = leaf.request(at)
        if len(self.leaves) == 1:
            self.stats.add("grants")
            return granted
        final = self.root.request(granted)
        self.stats.add("grants")
        return final
