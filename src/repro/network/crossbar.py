"""Event-delivery crossbar (paper Section IV-E).

"The processor-to-queue network is a 16x16 crossbar with 16 processors
multiplexed into one crossbar port."  Events are fixed-size, dataflow is
unidirectional, and delays from conflicts are tolerated — exactly the
situation the next-free-cycle model captures: each input port accepts
one event per cycle (the multiplexer), each output port delivers one
event per cycle, and a transfer pays a fixed traversal latency on top.
"""

from __future__ import annotations

from typing import List

from ..obs import probe
from ..obs import trace as obs_trace
from ..sim.kernel import Resource
from ..sim.stats import StatSet

__all__ = ["Crossbar"]


class Crossbar:
    """``num_ports`` x ``num_ports`` crossbar with port multiplexing."""

    def __init__(
        self,
        name: str,
        *,
        num_ports: int = 16,
        sources_per_port: int = 16,
        traversal_cycles: int = 2,
    ):
        if num_ports < 1:
            raise ValueError("num_ports must be >= 1")
        if sources_per_port < 1:
            raise ValueError("sources_per_port must be >= 1")
        self.name = name
        self.num_ports = num_ports
        self.sources_per_port = sources_per_port
        self.traversal_cycles = traversal_cycles
        self._inputs: List[Resource] = [
            Resource(f"{name}.in{p}") for p in range(num_ports)
        ]
        self._outputs: List[Resource] = [
            Resource(f"{name}.out{p}") for p in range(num_ports)
        ]
        self.stats = StatSet(name)

    def input_port_of(self, source: int) -> int:
        """Input port a source (e.g. generation stream) is muxed onto."""
        return (source // self.sources_per_port) % self.num_ports

    def send(self, source: int, dest_port: int, at: int) -> int:
        """Send one event; returns delivery cycle at the destination.

        The event serializes on its muxed input port, traverses the
        switch, then serializes on the destination output port.
        """
        if not 0 <= dest_port < self.num_ports:
            raise ValueError(f"dest_port {dest_port} out of range")
        in_start = self._inputs[self.input_port_of(source)].acquire(at, 1)
        arrival = in_start + self.traversal_cycles
        out_start = self._outputs[dest_port].acquire(arrival, 1)
        self.stats.add("events")
        wait = (in_start - at) + (out_start - arrival)
        self.stats.add("wait_cycles", wait)
        if obs_trace.ACTIVE is not None:
            probe.xbar_send(
                self.name, source, dest_port, in_start, out_start + 1, wait=wait
            )
        return out_start + 1

    def output_utilization(self, horizon: int) -> float:
        """Mean output-port busy fraction over ``horizon`` cycles."""
        if horizon <= 0:
            return 0.0
        busy = sum(p.stats.get("busy_cycles") for p in self._outputs)
        return min(busy / (horizon * self.num_ports), 1.0)
