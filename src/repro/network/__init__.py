"""On-chip interconnect: crossbar and arbiter models."""

from .arbiter import Arbiter, ArbiterTree
from .crossbar import Crossbar

__all__ = ["Arbiter", "ArbiterTree", "Crossbar"]
