"""Delta-accumulative linear-equation solving (paper Section II-B).

The paper notes that "a wide class of graph algorithms — PageRank, SSSP,
Connected Components, Adsorption, and many Linear Equation Solvers —
satisfy" the delta-accumulative properties.  This module provides that
last class: solving ``x = c + W^T x`` (equivalently ``A x = b`` after
Jacobi preconditioning) by propagating deltas over the dependency graph.

Mapping onto the event model:

    propagate(delta) = W_ij * delta      (the coefficient on edge i->j)
    reduce           = +
    V_init           = 0
    DeltaV_init      = c_j

which converges to the unique fixed point whenever the spectral radius
of ``W`` is below one — guaranteed for strictly diagonally dominant
systems, the standard Jacobi condition.  :func:`system_from_matrix`
turns such a dense system into the graph + constants the spec needs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..graph import CSRGraph
from .base import AlgorithmSpec, register_algorithm

__all__ = [
    "make_linear_solver",
    "system_from_matrix",
    "jacobi_reference",
    "DEFAULT_THRESHOLD",
]

DEFAULT_THRESHOLD = 1e-10


@register_algorithm("linear-solver")
def make_linear_solver(
    graph: Optional[CSRGraph] = None,
    *,
    constants: Optional[np.ndarray] = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> AlgorithmSpec:
    """Build a solver spec for ``x = c + W^T x``.

    ``graph`` must carry the coefficients ``W_ij`` as edge weights
    (edge i->j contributes ``W_ij * x_i`` to ``x_j``); ``constants`` is
    the vector ``c``.  Convergence requires the spectral radius of
    ``W`` below 1 (use :func:`system_from_matrix` for an ``A x = b``
    system, which guarantees this for diagonally dominant ``A``).
    """
    if graph is None or constants is None:
        raise ValueError("linear solver needs a weighted graph and constants")
    if graph.weights is None:
        raise ValueError("coefficient graph must carry edge weights")
    constants = np.asarray(constants, dtype=np.float64)
    if len(constants) != graph.num_vertices:
        raise ValueError("constants length must equal num_vertices")

    def reduce_fn(state: float, delta: float) -> float:
        return state + delta

    def propagate_fn(
        delta: float, src: int, dst: int, weight: float, out_degree: int
    ) -> float:
        return weight * delta

    def initial_delta(vertex: int, g: CSRGraph) -> float:
        return float(constants[vertex])

    def should_propagate(change: float) -> bool:
        return abs(change) > threshold

    return AlgorithmSpec(
        name="linear-solver",
        reduce=reduce_fn,
        propagate=propagate_fn,
        identity=0.0,
        initial_delta=initial_delta,
        should_propagate=should_propagate,
        uses_weights=True,
        additive=True,
        comparison_tolerance=max(threshold * 1e4, 1e-6),
        description="asynchronous Jacobi solver for x = c + W^T x",
    )


def system_from_matrix(
    matrix: np.ndarray,
    rhs: np.ndarray,
    *,
    name: str = "linear-system",
) -> Tuple[CSRGraph, np.ndarray]:
    """Convert a strictly diagonally dominant ``A x = b`` into the
    (graph, constants) pair the solver spec consumes.

    Jacobi splitting: ``x_j = b_j / A_jj - sum_{i != j} (A_ji / A_jj) x_i``,
    so the dependency edge ``i -> j`` carries ``-A_ji / A_jj`` and the
    constant vector is ``b / diag(A)``.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64)
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("matrix must be square")
    if rhs.shape != (n,):
        raise ValueError("rhs length must match the matrix")
    diagonal = np.diag(matrix)
    if np.any(diagonal == 0):
        raise ValueError("matrix needs a non-zero diagonal")
    off_diag_sums = np.sum(np.abs(matrix), axis=1) - np.abs(diagonal)
    if np.any(off_diag_sums >= np.abs(diagonal)):
        raise ValueError(
            "matrix must be strictly diagonally dominant for convergence"
        )

    edges = []
    weights = []
    for j in range(n):
        for i in range(n):
            if i != j and matrix[j, i] != 0.0:
                # x_i feeds x_j with coefficient -A_ji / A_jj
                edges.append((i, j))
                weights.append(-matrix[j, i] / diagonal[j])
    graph = CSRGraph.from_edges(n, edges, weights=weights, name=name)
    return graph, rhs / diagonal


def jacobi_reference(
    matrix: np.ndarray,
    rhs: np.ndarray,
    *,
    tolerance: float = 1e-13,
    max_iterations: int = 100_000,
) -> np.ndarray:
    """Golden oracle: classical synchronous Jacobi iteration."""
    matrix = np.asarray(matrix, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64)
    diagonal = np.diag(matrix)
    remainder = matrix - np.diag(diagonal)
    x = np.zeros_like(rhs)
    for _ in range(max_iterations):
        new_x = (rhs - remainder @ x) / diagonal
        if np.max(np.abs(new_x - x)) < tolerance:
            return new_x
        x = new_x
    return x
