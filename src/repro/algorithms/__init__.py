"""Delta-accumulative algorithm specs (Table II) and golden references."""

from .base import (
    AlgorithmSpec,
    ApplyResult,
    algorithm_names,
    get_algorithm,
    register_algorithm,
)
from .adsorption import (
    injection_values,
    make_adsorption,
    normalize_inbound_weights,
)
from .bfs import make_bfs, make_bfs_reachability
from .connected_components import make_connected_components, symmetrize
from .linear_solver import (
    jacobi_reference,
    make_linear_solver,
    system_from_matrix,
)
from .pagerank import make_pagerank_delta
from .reference import (
    adsorption_reference,
    bfs_reference,
    connected_components_reference,
    pagerank_reference,
    reference_for,
    sssp_reference,
)
from .sssp import make_sssp

__all__ = [
    "AlgorithmSpec",
    "ApplyResult",
    "algorithm_names",
    "get_algorithm",
    "register_algorithm",
    "make_pagerank_delta",
    "make_adsorption",
    "normalize_inbound_weights",
    "injection_values",
    "make_sssp",
    "make_bfs",
    "make_bfs_reachability",
    "make_connected_components",
    "symmetrize",
    "make_linear_solver",
    "system_from_matrix",
    "jacobi_reference",
    "pagerank_reference",
    "adsorption_reference",
    "sssp_reference",
    "bfs_reference",
    "connected_components_reference",
    "reference_for",
]
