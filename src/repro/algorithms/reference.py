"""Golden reference implementations (correctness oracles).

Straightforward, well-understood synchronous algorithms used by the test
suite to validate every engine in the reproduction: the functional
event model, the cycle-level accelerator, the slicing runtime and all
baselines must agree with these outputs (within each algorithm's
tolerance).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Optional

import numpy as np

from ..graph import CSRGraph

__all__ = [
    "pagerank_reference",
    "adsorption_reference",
    "sssp_reference",
    "bfs_reference",
    "connected_components_reference",
    "reference_for",
]


def pagerank_reference(
    graph: CSRGraph,
    *,
    alpha: float = 0.85,
    tolerance: float = 1e-12,
    max_iterations: int = 10_000,
) -> np.ndarray:
    """Jacobi iteration of  r = (1-alpha) + alpha * M r  (unnormalized PR).

    ``M`` is the column-stochastic out-degree-normalized adjacency; the
    fixed point matches PR-Delta's converged state.
    """
    n = graph.num_vertices
    out_deg = graph.out_degrees().astype(np.float64)
    inv_deg = np.where(out_deg > 0, 1.0 / np.maximum(out_deg, 1), 0.0)
    sources = graph.edge_sources()
    ranks = np.full(n, 1.0 - alpha, dtype=np.float64)
    for _ in range(max_iterations):
        contributions = ranks[sources] * inv_deg[sources]
        incoming = np.zeros(n, dtype=np.float64)
        np.add.at(incoming, graph.adjacency, contributions)
        new_ranks = (1.0 - alpha) + alpha * incoming
        if np.max(np.abs(new_ranks - ranks)) < tolerance:
            return new_ranks
        ranks = new_ranks
    return ranks


def adsorption_reference(
    graph: CSRGraph,
    injection: np.ndarray,
    *,
    continue_prob: float = 0.85,
    injection_prob: float = 0.15,
    tolerance: float = 1e-12,
    max_iterations: int = 10_000,
) -> np.ndarray:
    """Jacobi iteration of  v = beta*I + alpha * W^T v  (weighted walk)."""
    if graph.weights is None:
        raise ValueError("adsorption reference needs edge weights")
    n = graph.num_vertices
    base = injection_prob * np.asarray(injection, dtype=np.float64)
    sources = graph.edge_sources()
    values = base.copy()
    for _ in range(max_iterations):
        contributions = continue_prob * graph.weights * values[sources]
        incoming = np.zeros(n, dtype=np.float64)
        np.add.at(incoming, graph.adjacency, contributions)
        new_values = base + incoming
        if np.max(np.abs(new_values - values)) < tolerance:
            return new_values
        values = new_values
    return values


def sssp_reference(graph: CSRGraph, root: int = 0) -> np.ndarray:
    """Dijkstra with a binary heap (non-negative weights)."""
    n = graph.num_vertices
    dist = np.full(n, math.inf, dtype=np.float64)
    dist[root] = 0.0
    heap = [(0.0, root)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        weights = graph.edge_weights(u)
        for v, w in zip(graph.neighbors(u).tolist(), weights.tolist()):
            candidate = d + w
            if candidate < dist[v]:
                dist[v] = candidate
                heapq.heappush(heap, (candidate, v))
    return dist


def bfs_reference(graph: CSRGraph, root: int = 0) -> np.ndarray:
    """Queue-based BFS producing hop distances from ``root``."""
    n = graph.num_vertices
    level = np.full(n, math.inf, dtype=np.float64)
    level[root] = 0.0
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u).tolist():
            if math.isinf(level[v]):
                level[v] = level[u] + 1.0
                queue.append(v)
    return level


def connected_components_reference(graph: CSRGraph) -> np.ndarray:
    """Union-find over undirected connectivity; labels are the max id.

    The returned array maps each vertex to the maximum vertex id in its
    (weakly) connected component, matching the max-label-propagation
    fixed point.
    """
    n = graph.num_vertices
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    for src, dst in graph.edges():
        ra, rb = find(src), find(dst)
        if ra != rb:
            parent[rb] = ra

    labels = np.zeros(n, dtype=np.float64)
    max_of_root: dict = {}
    for v in range(n):
        r = find(v)
        max_of_root[r] = max(max_of_root.get(r, -1), v)
    for v in range(n):
        labels[v] = max_of_root[find(v)]
    return labels


def reference_for(
    name: str,
    graph: CSRGraph,
    *,
    root: int = 0,
    alpha: float = 0.85,
    injection: Optional[np.ndarray] = None,
    continue_prob: float = 0.85,
    injection_prob: float = 0.15,
) -> np.ndarray:
    """Dispatch a golden implementation by algorithm name.

    ``bfs-reachability`` maps reachable vertices to 0 by masking the BFS
    levels, matching the literal Table II formulation.
    """
    if name == "pagerank":
        return pagerank_reference(graph, alpha=alpha)
    if name == "adsorption":
        if injection is None:
            raise ValueError("adsorption reference needs injection values")
        return adsorption_reference(
            graph,
            injection,
            continue_prob=continue_prob,
            injection_prob=injection_prob,
        )
    if name == "sssp":
        return sssp_reference(graph, root=root)
    if name == "bfs":
        return bfs_reference(graph, root=root)
    if name == "bfs-reachability":
        levels = bfs_reference(graph, root=root)
        return np.where(np.isfinite(levels), 0.0, math.inf)
    if name == "cc":
        return connected_components_reference(graph)
    raise ValueError(f"no reference implementation for {name!r}")
