"""Delta-accumulative algorithm abstraction (paper Section II-B, Table II).

GraphPulse targets algorithms expressible in the delta-accumulative form
of Zhang et al. (Maiter):

    v_j^k       = v_j^{k-1} (+) delta_v_j^k
    delta_v_j^{k+1} = SUM_(+) over incoming edges of g<i,j>(delta_v_i^k)

where ``(+)`` is the *reduce* operator (commutative + associative, with an
identity element) and ``g<i,j>`` is the *propagate* function (distributive
over the reduce operator).  These two properties are exactly what lets
the accelerator coalesce in-flight events and process vertices in any
order (the paper's *Reordering* and *Simplification* properties).

An :class:`AlgorithmSpec` bundles, per Table II:

- ``reduce(state, delta)`` — combine a delta into a vertex state (and,
  identically, coalesce two queued deltas);
- ``propagate(delta, src, dst, weight, out_degree)`` — the outgoing delta
  for one edge given the change at the source;
- ``identity`` — reduce's identity element, used both to initialize the
  vertex memory and as the "empty slot" marker in the coalescing queue;
- ``initial_delta(vertex, graph)`` — bootstrap events;
- ``should_propagate(change)`` — the local termination condition.

The engines (functional, cycle-level, baselines) all consume the same
spec, so correctness tests comparing them exercise a single algorithm
definition end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..graph import CSRGraph

__all__ = ["AlgorithmSpec", "register_algorithm", "get_algorithm", "algorithm_names"]


PropagateFn = Callable[[float, int, int, float, int], float]
ReduceFn = Callable[[float, float], float]
InitialDeltaFn = Callable[[int, CSRGraph], float]
ShouldPropagateFn = Callable[[float], bool]
LocalTargetFn = Callable[[CSRGraph, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class AlgorithmSpec:
    """A delta-accumulative graph algorithm (one row of Table II)."""

    name: str
    #: reduce operator (+): combines state with delta, coalesces deltas
    reduce: ReduceFn
    #: propagate function g<i,j>(delta)
    propagate: PropagateFn
    #: identity element of reduce; also the initial vertex state
    identity: float
    #: initial event delta per vertex (Identity => no initial event)
    initial_delta: InitialDeltaFn
    #: local termination: propagate only when the state change passes this
    should_propagate: ShouldPropagateFn
    #: whether the algorithm consumes edge weights
    uses_weights: bool = False
    #: True when reduce is arithmetic addition — the propagated change is
    #: then the difference new-old; monotonic (min/max) algorithms instead
    #: propagate the new state itself
    additive: bool = False
    #: tolerance for comparing against golden outputs in tests
    comparison_tolerance: float = 1e-6
    #: quiescent local fixed-point invariant: ``local_target(graph,
    #: state)[v]`` is what ``state[v]`` must equal (monotonic reduce) or
    #: match within the fault-free residual band (additive reduce) once
    #: the event queue drains.  The resilience subsystem checks it at
    #: quiescence and re-injects the residual to repair faults; None
    #: means the algorithm publishes no invariant (no detection/repair).
    local_target: Optional[LocalTargetFn] = None
    #: fault-free residual the additive invariant may carry per in-edge
    #: at quiescence (local termination leaves sub-threshold deltas
    #: unpropagated); 0.0 for exact (monotonic) algorithms
    residual_tolerance: float = 0.0
    #: optional human description
    description: str = ""

    def initial_state(self, graph: CSRGraph) -> np.ndarray:
        """Vertex property memory at t=0: the reduce identity everywhere."""
        return np.full(graph.num_vertices, self.identity, dtype=np.float64)

    def initial_events(self, graph: CSRGraph) -> Dict[int, float]:
        """Bootstrap event set: vertex -> delta, omitting identity deltas.

        The paper: "The initial events, that are set with the initial
        target value of the vertices, populate the event queue."  A delta
        equal to the identity would be a no-op, so it is skipped (the
        Simplification property).
        """
        events: Dict[int, float] = {}
        for v in range(graph.num_vertices):
            delta = self.initial_delta(v, graph)
            if delta != self.identity:
                events[v] = delta
        return events

    def apply(self, state: float, delta: float) -> "ApplyResult":
        """One vertex update: reduce the delta in, report the change.

        Returns the new state and the *change* ``Delta_u`` used by the
        propagate step (Algorithm 1 lines 5-7).  For ``+`` the change is
        the arithmetic difference; for ``min``/``max`` the change is the
        new state itself when it moved (monotonic algorithms re-propagate
        their new value).
        """
        new_state = self.reduce(state, delta)
        if new_state == state:
            return ApplyResult(new_state, 0.0, changed=False)
        change = new_state - state if self.additive else new_state
        return ApplyResult(new_state, change, changed=True)


@dataclass(frozen=True)
class ApplyResult:
    """Outcome of applying one delta to a vertex state."""

    state: float
    change: float
    changed: bool


_REGISTRY: Dict[str, Callable[..., AlgorithmSpec]] = {}


def register_algorithm(name: str) -> Callable:
    """Class-/factory-decorator adding an algorithm to the registry."""

    def decorator(factory: Callable[..., AlgorithmSpec]):
        _REGISTRY[name] = factory
        return factory

    return decorator


def get_algorithm(name: str, graph: Optional[CSRGraph] = None, **kwargs) -> AlgorithmSpec:
    """Instantiate a registered algorithm by name.

    Some algorithms (PageRank) need graph-level constants such as
    out-degrees; factories accept the graph when provided.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(graph=graph, **kwargs)


def algorithm_names() -> tuple:
    """Names of all registered algorithms."""
    return tuple(sorted(_REGISTRY))
