"""PageRank-Delta: incremental, delta-accumulative PageRank.

Table II row ``PR-Delta``:

    propagate(delta) = alpha * E_ij * delta / N(src)
    reduce           = +
    V_init           = 0
    DeltaV_init      = 1 - alpha

The fixed point is the *unnormalized* PageRank used by Ligra's
PageRankDelta and by Maiter:

    rank(j) = (1 - alpha) + alpha * sum_{i -> j} rank(i) / out_degree(i)

Local termination (Algorithm 1 line 8): a vertex stops propagating when
the magnitude of its accumulated change falls below ``threshold``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph import CSRGraph
from .base import AlgorithmSpec, register_algorithm

__all__ = ["make_pagerank_delta", "DEFAULT_ALPHA", "DEFAULT_THRESHOLD"]

DEFAULT_ALPHA = 0.85
DEFAULT_THRESHOLD = 1e-8


@register_algorithm("pagerank")
def make_pagerank_delta(
    graph: Optional[CSRGraph] = None,
    *,
    alpha: float = DEFAULT_ALPHA,
    threshold: float = DEFAULT_THRESHOLD,
) -> AlgorithmSpec:
    """Build the PR-Delta spec.

    The graph argument is accepted for registry uniformity; PR-Delta
    reads the source out-degree through the propagate signature, so the
    spec itself is graph independent.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    if threshold < 0.0:
        raise ValueError("threshold must be non-negative")

    def reduce_fn(state: float, delta: float) -> float:
        return state + delta

    def propagate_fn(
        delta: float, src: int, dst: int, weight: float, out_degree: int
    ) -> float:
        # out_degree > 0 is guaranteed: propagate is only invoked per
        # existing out-edge of src.
        return alpha * delta / out_degree

    def initial_delta(vertex: int, g: CSRGraph) -> float:
        return 1.0 - alpha

    def should_propagate(change: float) -> bool:
        return abs(change) > threshold

    def local_target(g: CSRGraph, state: np.ndarray) -> np.ndarray:
        # the quiescent fixed point, recomputed push-style: every vertex
        # holds its initial delta plus alpha/outdeg of each in-neighbour
        out_degree = g.out_degrees()
        sources = g.edge_sources()
        contribution = alpha * state[sources] / out_degree[sources]
        target = np.full(g.num_vertices, 1.0 - alpha, dtype=np.float64)
        np.add.at(target, g.adjacency, contribution)
        return target

    return AlgorithmSpec(
        name="pagerank",
        reduce=reduce_fn,
        propagate=propagate_fn,
        identity=0.0,
        initial_delta=initial_delta,
        should_propagate=should_propagate,
        uses_weights=False,
        additive=True,
        comparison_tolerance=max(threshold * 1e4, 1e-5),
        local_target=local_target,
        # each in-edge may carry a few sub-threshold unpropagated tails
        # at quiescence; 4x covers the geometric decay in practice
        residual_tolerance=4.0 * alpha * threshold,
        description="PageRank-Delta (contribution-based incremental PageRank)",
    )
