"""Breadth-First Search in delta-accumulative form.

Table II lists BFS with ``reduce = min``, ``V_init = inf`` and a root
delta of 0.  We provide two variants:

- :func:`make_bfs` — *level* BFS, the conventional delta-accumulative
  formulation (``propagate = delta + 1``), whose fixed point is the hop
  distance from the root.  This matches the behaviour the paper
  describes (vertices activated frontier by frontier, reactivation when
  a shorter hop count arrives) and is what the benchmarks run.
- :func:`make_bfs_reachability` — the literal Table II row
  (``propagate(delta) = 0``): every vertex reachable from the root ends
  with value 0, everything else stays at infinity.  Kept for fidelity
  and exercised by the tests.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..graph import CSRGraph
from .base import AlgorithmSpec, register_algorithm

__all__ = ["make_bfs", "make_bfs_reachability", "INFINITY"]

INFINITY = math.inf


@register_algorithm("bfs")
def make_bfs(
    graph: Optional[CSRGraph] = None,
    *,
    root: int = 0,
) -> AlgorithmSpec:
    """Level-BFS: vertex value converges to hop distance from ``root``."""
    if root < 0:
        raise ValueError("root must be a valid vertex id")

    def reduce_fn(state: float, delta: float) -> float:
        return min(state, delta)

    def propagate_fn(
        delta: float, src: int, dst: int, weight: float, out_degree: int
    ) -> float:
        return delta + 1.0

    def initial_delta(vertex: int, g: CSRGraph) -> float:
        return 0.0 if vertex == root else INFINITY

    def should_propagate(change: float) -> bool:
        return True

    def local_target(g: CSRGraph, state: np.ndarray) -> np.ndarray:
        # quiescent levels satisfy level(v) = min(init(v), 1 + min of
        # in-neighbour levels)
        target = np.full(g.num_vertices, INFINITY, dtype=np.float64)
        if root < g.num_vertices:
            target[root] = 0.0
        sources = g.edge_sources()
        np.minimum.at(target, g.adjacency, state[sources] + 1.0)
        return target

    return AlgorithmSpec(
        name="bfs",
        reduce=reduce_fn,
        propagate=propagate_fn,
        identity=INFINITY,
        initial_delta=initial_delta,
        should_propagate=should_propagate,
        uses_weights=False,
        additive=False,
        comparison_tolerance=0.0,
        local_target=local_target,
        description=f"Breadth-first search levels from vertex {root}",
    )


@register_algorithm("bfs-reachability")
def make_bfs_reachability(
    graph: Optional[CSRGraph] = None,
    *,
    root: int = 0,
) -> AlgorithmSpec:
    """Literal Table II BFS: marks vertices reachable from ``root`` with 0."""
    if root < 0:
        raise ValueError("root must be a valid vertex id")

    def reduce_fn(state: float, delta: float) -> float:
        return min(state, delta)

    def propagate_fn(
        delta: float, src: int, dst: int, weight: float, out_degree: int
    ) -> float:
        return 0.0

    def initial_delta(vertex: int, g: CSRGraph) -> float:
        return 0.0 if vertex == root else INFINITY

    def should_propagate(change: float) -> bool:
        return True

    def local_target(g: CSRGraph, state: np.ndarray) -> np.ndarray:
        # a vertex is reachable (0) iff it is the root or any
        # in-neighbour is reachable
        target = np.full(g.num_vertices, INFINITY, dtype=np.float64)
        if root < g.num_vertices:
            target[root] = 0.0
        sources = g.edge_sources()
        reached = np.where(np.isfinite(state[sources]), 0.0, INFINITY)
        np.minimum.at(target, g.adjacency, reached)
        return target

    return AlgorithmSpec(
        name="bfs-reachability",
        reduce=reduce_fn,
        propagate=propagate_fn,
        identity=INFINITY,
        initial_delta=initial_delta,
        should_propagate=should_propagate,
        uses_weights=False,
        additive=False,
        comparison_tolerance=0.0,
        local_target=local_target,
        description=f"Reachability from vertex {root} (Table II literal BFS)",
    )
