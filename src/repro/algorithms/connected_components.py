"""Connected Components via max-label propagation (Table II).

Table II row ``Conn. Comp.``:

    propagate(delta) = delta
    reduce           = max
    V_init           = -1
    DeltaV_init      = j   (each vertex injects its own id)

At the fixed point every vertex holds the maximum vertex id in its
component.  Components are defined over *undirected* connectivity, so —
as in Ligra/Graphicionado evaluations — the graph must be symmetrized
first; :func:`symmetrize` provides that preprocessing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph import CSRGraph
from .base import AlgorithmSpec, register_algorithm

__all__ = ["make_connected_components", "symmetrize"]


def symmetrize(graph: CSRGraph) -> CSRGraph:
    """Return the graph with every edge mirrored (weights preserved).

    Duplicate edges introduced by mirroring are kept — they do not change
    the fixed point of label propagation and preserve CSR determinism.
    """
    sources = graph.edge_sources()
    forward = np.stack([sources, graph.adjacency], axis=1)
    backward = np.stack([graph.adjacency, sources], axis=1)
    edges = np.concatenate([forward, backward], axis=0)
    weights = None
    if graph.weights is not None:
        weights = np.concatenate([graph.weights, graph.weights]).tolist()
    return CSRGraph.from_edges(
        graph.num_vertices, edges, weights=weights, name=f"{graph.name}+sym"
    )


@register_algorithm("cc")
def make_connected_components(
    graph: Optional[CSRGraph] = None,
) -> AlgorithmSpec:
    """Build the Connected Components spec (max-label propagation)."""

    def reduce_fn(state: float, delta: float) -> float:
        return max(state, delta)

    def propagate_fn(
        delta: float, src: int, dst: int, weight: float, out_degree: int
    ) -> float:
        return delta

    def initial_delta(vertex: int, g: CSRGraph) -> float:
        return float(vertex)

    def should_propagate(change: float) -> bool:
        return True

    def local_target(g: CSRGraph, state: np.ndarray) -> np.ndarray:
        # quiescent labels satisfy label(v) = max(v, max of in-neighbour
        # labels); on a symmetrized graph that is the component maximum
        target = np.arange(g.num_vertices, dtype=np.float64)
        sources = g.edge_sources()
        np.maximum.at(target, g.adjacency, state[sources])
        return target

    return AlgorithmSpec(
        name="cc",
        reduce=reduce_fn,
        propagate=propagate_fn,
        identity=-1.0,
        initial_delta=initial_delta,
        should_propagate=should_propagate,
        uses_weights=False,
        additive=False,
        comparison_tolerance=0.0,
        local_target=local_target,
        description="Connected components via max-label propagation",
    )
