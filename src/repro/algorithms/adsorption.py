"""Adsorption: label-propagation random-walk algorithm (Table II).

Table II row ``Adsorption``:

    propagate(delta) = alpha_i * E_ij * delta
    reduce           = +
    V_init           = 0
    DeltaV_init      = beta_j * I_j

where ``alpha_i`` is the continuation probability, ``beta_j`` the
injection probability and ``I_j`` the injected label mass of vertex j.
The fixed point solves   v = B + A^T v   with A_ij = alpha * E_ij,
which converges when the inbound weights of every vertex sum to at most
one — the paper "normalized the inbound weights for each vertex", and
:func:`normalize_inbound_weights` reproduces that preprocessing step.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph import CSRGraph
from .base import AlgorithmSpec, register_algorithm

__all__ = [
    "make_adsorption",
    "normalize_inbound_weights",
    "injection_values",
    "DEFAULT_CONTINUE_PROB",
    "DEFAULT_INJECTION_PROB",
    "DEFAULT_THRESHOLD",
]

DEFAULT_CONTINUE_PROB = 0.85
DEFAULT_INJECTION_PROB = 0.15
DEFAULT_THRESHOLD = 1e-8


def normalize_inbound_weights(graph: CSRGraph) -> CSRGraph:
    """Scale edge weights so each vertex's *incoming* weights sum to 1.

    Vertices with no incoming edges are untouched.  This is the paper's
    Adsorption preprocessing and guarantees convergence for any
    continuation probability < 1.
    """
    if graph.weights is None:
        graph = graph.with_unit_weights()
    in_weight = np.zeros(graph.num_vertices, dtype=np.float64)
    np.add.at(in_weight, graph.adjacency, graph.weights)
    scale = np.ones(graph.num_vertices, dtype=np.float64)
    nonzero = in_weight > 0
    scale[nonzero] = 1.0 / in_weight[nonzero]
    return graph.with_weights(graph.weights * scale[graph.adjacency])


def injection_values(graph: CSRGraph, *, seed: int = 7) -> np.ndarray:
    """Deterministic per-vertex injected label mass ``I_j`` in [0, 1)."""
    rng = np.random.default_rng(seed)
    return rng.random(graph.num_vertices)


@register_algorithm("adsorption")
def make_adsorption(
    graph: Optional[CSRGraph] = None,
    *,
    continue_prob: float = DEFAULT_CONTINUE_PROB,
    injection_prob: float = DEFAULT_INJECTION_PROB,
    injection: Optional[np.ndarray] = None,
    threshold: float = DEFAULT_THRESHOLD,
    seed: int = 7,
) -> AlgorithmSpec:
    """Build the Adsorption spec.

    ``injection`` defaults to :func:`injection_values` of the graph; the
    graph is required in that case so per-vertex ``I_j`` can be drawn.
    The graph's weights must already be inbound-normalized (or small
    enough) for convergence; use :func:`normalize_inbound_weights`.
    """
    if not 0.0 < continue_prob < 1.0:
        raise ValueError("continue_prob must be in (0, 1)")
    if injection is None:
        if graph is None:
            raise ValueError("adsorption needs a graph or explicit injection")
        injection = injection_values(graph, seed=seed)
    injection = np.asarray(injection, dtype=np.float64)

    def reduce_fn(state: float, delta: float) -> float:
        return state + delta

    def propagate_fn(
        delta: float, src: int, dst: int, weight: float, out_degree: int
    ) -> float:
        return continue_prob * weight * delta

    def initial_delta(vertex: int, g: CSRGraph) -> float:
        return injection_prob * float(injection[vertex])

    def should_propagate(change: float) -> bool:
        return abs(change) > threshold

    def local_target(g: CSRGraph, state: np.ndarray) -> np.ndarray:
        # quiescent fixed point: v = beta*I + alpha * W^T v (inbound-
        # normalized weights), recomputed push-style over all edges
        target = injection_prob * injection[: g.num_vertices].astype(np.float64)
        sources = g.edge_sources()
        weights = (
            g.weights
            if g.weights is not None
            else np.ones(g.num_edges, dtype=np.float64)
        )
        np.add.at(
            target, g.adjacency, continue_prob * weights * state[sources]
        )
        return target

    return AlgorithmSpec(
        name="adsorption",
        reduce=reduce_fn,
        propagate=propagate_fn,
        identity=0.0,
        initial_delta=initial_delta,
        should_propagate=should_propagate,
        uses_weights=True,
        additive=True,
        comparison_tolerance=max(threshold * 1e4, 1e-5),
        local_target=local_target,
        # sub-threshold unpropagated tails per in-edge at quiescence
        residual_tolerance=4.0 * continue_prob * threshold,
        description="Adsorption label propagation (weighted random walk)",
    )
