"""Single-Source Shortest Paths in delta-accumulative form (Table II).

Table II row ``SSSP``:

    propagate(delta) = E_ij + delta
    reduce           = min
    V_init           = +inf
    DeltaV_init      = 0 for the root, +inf otherwise

``min`` is commutative/associative with identity ``+inf``, so events
coalesce by keeping the shortest tentative distance.  A vertex propagates
whenever its distance improves (monotonic algorithms have no magnitude
threshold).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..graph import CSRGraph
from .base import AlgorithmSpec, register_algorithm

__all__ = ["make_sssp", "INFINITY"]

INFINITY = math.inf


@register_algorithm("sssp")
def make_sssp(
    graph: Optional[CSRGraph] = None,
    *,
    root: int = 0,
) -> AlgorithmSpec:
    """Build the SSSP spec rooted at ``root``.

    The graph should carry non-negative edge weights; unweighted graphs
    fall back to unit weights through ``CSRGraph.edge_weights``.
    """
    if root < 0:
        raise ValueError("root must be a valid vertex id")

    def reduce_fn(state: float, delta: float) -> float:
        return min(state, delta)

    def propagate_fn(
        delta: float, src: int, dst: int, weight: float, out_degree: int
    ) -> float:
        return weight + delta

    def initial_delta(vertex: int, g: CSRGraph) -> float:
        return 0.0 if vertex == root else INFINITY

    def should_propagate(change: float) -> bool:
        return True

    def local_target(g: CSRGraph, state: np.ndarray) -> np.ndarray:
        # quiescent distances satisfy the Bellman condition:
        # d(v) = min(init(v), min over u->v of d(u) + w(u,v))
        target = np.full(g.num_vertices, INFINITY, dtype=np.float64)
        if root < g.num_vertices:
            target[root] = 0.0
        sources = g.edge_sources()
        weights = (
            g.weights
            if g.weights is not None
            else np.ones(g.num_edges, dtype=np.float64)
        )
        np.minimum.at(target, g.adjacency, state[sources] + weights)
        return target

    return AlgorithmSpec(
        name="sssp",
        reduce=reduce_fn,
        propagate=propagate_fn,
        identity=INFINITY,
        initial_delta=initial_delta,
        should_propagate=should_propagate,
        uses_weights=True,
        additive=False,
        comparison_tolerance=1e-9,
        local_target=local_target,
        description=f"Single-source shortest paths from vertex {root}",
    )
