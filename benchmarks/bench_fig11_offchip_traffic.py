"""Figure 11: off-chip memory accesses normalized to Graphicionado.

The paper reports GraphPulse needs "54% less off-chip traffic on
average" than Graphicionado (normalized values around 0.2-0.8 across
the 25 workloads).  This benchmark regenerates the normalized-traffic
matrix; the asserted shape is a ratio below 1.0 everywhere with an
average well below it.
"""

import pytest
from conftest import get_comparison, publish

from repro.analysis import ALGORITHMS, format_table
from repro.graph import dataset_names

_ROWS = {}


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("dataset", dataset_names())
def test_fig11_offchip_traffic(benchmark, dataset, algorithm):
    result = benchmark.pedantic(
        lambda: get_comparison(dataset, algorithm), rounds=1, iterations=1
    )
    ratio = result.traffic_vs_graphicionado
    _ROWS[(algorithm, dataset)] = ratio
    assert 0.0 < ratio < 1.0, (
        "GraphPulse must move less off-chip data than Graphicionado"
    )


def test_fig11_render_table(benchmark):
    def render():
        rows = []
        for algorithm in ALGORITHMS:
            for dataset in dataset_names():
                ratio = _ROWS.get((algorithm, dataset))
                if ratio is None:
                    ratio = get_comparison(
                        dataset, algorithm
                    ).traffic_vs_graphicionado
                rows.append([algorithm, dataset, ratio])
        mean = sum(r[2] for r in rows) / len(rows)
        table = format_table(
            ["algorithm", "graph", "traffic vs Graphicionado"],
            rows,
            title=(
                "Figure 11 (measured): off-chip traffic normalized to "
                f"Graphicionado, lower is better (mean {mean:.2f}; "
                "paper mean ~0.46)"
            ),
        )
        publish("fig11_offchip_traffic", table)
        return mean

    mean = benchmark.pedantic(render, rounds=1, iterations=1)
    assert mean < 0.85
