"""Ablation: scheduler bin-visit policies (Section IV-C).

The paper's scheduler visits bins round-robin and notes "other
application-informed policies are possible".  This benchmark compares
round-robin against occupancy-first and reverse orders on PageRank and
SSSP, confirming the fixed point is schedule-independent (the Reordering
property) while work/rounds may shift.
"""

from conftest import publish

from repro.analysis import format_table, prepare_workload
from repro.core import FunctionalGraphPulse, build_engine


def run_policy_sweep():
    rows = []
    results = {}
    for algorithm in ("pagerank", "sssp"):
        graph, spec = prepare_workload("LJ", algorithm, scale=0.2)
        for policy in FunctionalGraphPulse.SCHEDULING_POLICIES:
            result = build_engine(
                "functional",
                (graph, spec),
                {"scheduling": policy, "block_size": 16},
            ).run().raw
            results[(algorithm, policy)] = result
            rows.append(
                [
                    algorithm,
                    policy,
                    result.num_rounds,
                    result.total_events_processed,
                    result.traffic.edge_reads,
                    f"{result.coalesce_rate():.2f}",
                ]
            )
    table = format_table(
        [
            "algorithm",
            "policy",
            "rounds",
            "events",
            "edges read",
            "coalesce rate",
        ],
        rows,
        title="Ablation (measured): scheduler bin-visit policies on LJ proxy",
    )
    publish("scheduling_policies", table)
    return results


def test_scheduling_policy_ablation(benchmark):
    import numpy as np

    results = benchmark.pedantic(run_policy_sweep, rounds=1, iterations=1)
    # identical fixed points across policies (Reordering property)
    for algorithm in ("pagerank", "sssp"):
        baseline = results[(algorithm, "round-robin")].values
        for policy in ("occupancy", "reverse"):
            assert np.allclose(
                results[(algorithm, policy)].values, baseline, atol=1e-7
            )
