"""Figure 13: cycles spent by an event in each execution stage.

The paper breaks an event's life into Vtx-Mem, Process, Gen-Buffer,
Edge-Mem and Generate stages (stacked chronologically) and observes:
prefetching masks vertex-read latency down to a few cycles, processing
is a few pipeline cycles, and edge-memory access dominates because of
the volume of edge data per event on power-law graphs.

This benchmark runs the detailed cycle-level model on scaled proxies of
all five graphs for PageRank plus the four other algorithms on LJ, and
regenerates the per-stage table.  The breakdown is derived from the
*telemetry* — each ``event``/``generate`` span the cycle model emits
carries its per-stage cycles — and cross-checked against the model's
own counters, so the trace schema is load-bearing, not decorative.
"""

import pytest
from conftest import publish

from repro.analysis import format_table, prepare_workload
from repro.core import build_engine
from repro.obs import Tracer, export, tracing

#: small scales: the cycle model times every event individually
CYCLE_SCALES = {"WG": 0.06, "FB": 0.05, "WK": 0.05, "LJ": 0.04, "TW": 0.008}

_ROWS = {}

WORKLOADS = [
    ("pagerank", "WG"),
    ("pagerank", "FB"),
    ("pagerank", "WK"),
    ("pagerank", "LJ"),
    ("pagerank", "TW"),
    ("adsorption", "LJ"),
    ("sssp", "LJ"),
    ("bfs", "LJ"),
    ("cc", "LJ"),
]


def run_cycle_model(algorithm, dataset):
    """Run one workload under tracing; returns (result, stage breakdown)."""
    graph, spec = prepare_workload(
        dataset, algorithm, scale=CYCLE_SCALES[dataset]
    )
    with tracing(Tracer(categories=("proc", "gen"))) as tracer:
        result = build_engine("cycle", (graph, spec)).run().raw
    return result, export.stage_breakdown(tracer)


@pytest.mark.parametrize("algorithm,dataset", WORKLOADS)
def test_fig13_stage_profile(benchmark, algorithm, dataset):
    result, profile = benchmark.pedantic(
        lambda: run_cycle_model(algorithm, dataset), rounds=1, iterations=1
    )
    _ROWS[(algorithm, dataset)] = profile
    # the telemetry-derived breakdown must agree with the model's own
    # stage counters (same events, same per-stage cycles)
    counters = result.stage_profile.per_event()
    assert profile["events"] == result.stage_profile.events
    for stage in export.STAGES:
        assert profile[stage] == pytest.approx(counters[stage])
    # prefetching keeps the vertex read far below raw DRAM latency
    assert profile["vertex_mem"] < 40
    # the process stage is the fixed reduce pipeline
    assert profile["process"] == pytest.approx(4.0)
    assert result.converged


def test_fig13_render_table(benchmark):
    def render():
        rows = []
        for algorithm, dataset in WORKLOADS:
            profile = _ROWS.get((algorithm, dataset))
            if profile is None:
                profile = run_cycle_model(algorithm, dataset)[1]
            rows.append(
                [
                    algorithm,
                    dataset,
                    profile["vertex_mem"],
                    profile["process"],
                    profile["gen_buffer"],
                    profile["edge_mem"],
                    profile["generate"],
                ]
            )
        table = format_table(
            [
                "algorithm",
                "graph",
                "VtxMem",
                "Process",
                "GenBuf",
                "EdgeMem",
                "Generate",
            ],
            rows,
            title=(
                "Figure 13 (measured): cycles per event per stage, "
                "chronological order"
            ),
        )
        publish("fig13_event_stages", table)
        return rows

    rows = benchmark.pedantic(render, rounds=1, iterations=1)
    assert len(rows) == len(WORKLOADS)
