"""Table I: access-pattern comparison of graph processing models.

The paper's Table I qualitatively contrasts Pull, Push and GraphPulse on
random reads/writes, synchronization, active-set tracking and atomics.
This benchmark measures those quantities for a PageRank run on a
power-law proxy across all four modelled paradigms (push, pull,
edge-centric, event-driven) and prints the measured counts.

Expected shape: pull has the most random reads; push/edge-centric need
one atomic per traversed edge; the event-driven model needs no atomics,
no barriers and no active-set bookkeeping.
"""

from conftest import publish

from repro.analysis import format_table, prepare_workload
from repro.baselines import profile_models


def regenerate_table1():
    graph, spec = prepare_workload("WG", "pagerank", scale=0.2)
    profiles = profile_models(graph, spec)
    order = ["pull", "push", "edge-centric", "event-driven"]
    rows = []
    for name in order:
        p = profiles[name]
        rows.append(
            [
                name,
                p.random_reads,
                p.random_writes,
                p.atomic_updates,
                p.synchronizations,
                p.active_set_ops,
            ]
        )
    table = format_table(
        [
            "model",
            "rand reads",
            "rand writes",
            "atomics",
            "barriers",
            "active-set ops",
        ],
        rows,
        title="Table I (measured): PageRank on WG proxy",
    )
    publish("table1_models", table)
    return profiles


def test_table1_model_comparison(benchmark):
    profiles = benchmark.pedantic(regenerate_table1, rounds=1, iterations=1)
    event = profiles["event-driven"]
    # the paper's claims, asserted
    assert event.atomic_updates == 0
    assert event.synchronizations == 0
    assert event.active_set_ops == 0
    assert profiles["pull"].random_reads > event.random_reads
    assert profiles["push"].atomic_updates > 0
