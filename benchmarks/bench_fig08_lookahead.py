"""Figure 8: degree of lookahead in events processed in each round.

With a 256-bin queue running PageRank-Delta on LiveJournal, the paper
shows that coalesced events quickly compound "the effects of hundreds of
previous iterations of events in a single round" — bucketed as 0, <100,
<200, <300, <400, >400.  This benchmark reproduces the per-round
histogram on the LJ proxy with the same 256-bin queue geometry.
"""

from conftest import publish

from repro.analysis import format_table, prepare_workload
from repro.core import LOOKAHEAD_BUCKETS, build_engine

BUCKET_ORDER = ["0"] + [f"<{b}" for b in LOOKAHEAD_BUCKETS[1:]] + [
    f">{LOOKAHEAD_BUCKETS[-1]}"
]


def regenerate_figure8():
    graph, spec = prepare_workload("LJ", "pagerank", scale=0.5)
    result = build_engine(
        "functional",
        (graph, spec),
        {
            "num_bins": 256,
            "block_size": 8,  # queue geometry scaled with the proxy graph
            "track_lookahead": True,
        },
    ).run().raw
    rows = []
    for record in result.rounds:
        histogram = record.lookahead_histogram
        rows.append(
            [record.round_index]
            + [histogram.get(bucket, 0) for bucket in BUCKET_ORDER]
        )
    table = format_table(
        ["round"] + BUCKET_ORDER,
        rows,
        title=(
            "Figure 8 (measured): lookahead of events processed per round "
            "(256-bin queue, PageRank on LJ proxy)"
        ),
    )
    publish("fig08_lookahead", table)
    return result


def test_fig08_lookahead_distribution(benchmark):
    result = benchmark.pedantic(regenerate_figure8, rounds=1, iterations=1)
    total_ahead = 0
    deep_ahead = 0
    for record in result.rounds:
        for bucket, count in record.lookahead_histogram.items():
            if bucket != "0":
                total_ahead += count
            if bucket in (">400", "<400", "<300", "<200", "<100"):
                deep_ahead += count if bucket != "0" else 0
    # asynchronous execution compounds work across iterations
    assert total_ahead > 0
    # lookahead grows across rounds: later rounds see deeper compounding
    later = result.rounds[len(result.rounds) // 2]
    deep_buckets = {
        b: c for b, c in later.lookahead_histogram.items() if b != "0"
    }
    assert sum(deep_buckets.values()) > 0
