"""Figure 12: fraction of off-chip data utilized by the computation.

The paper shows that "a very large fraction of data brought via
off-chip accesses is utilized" by GraphPulse (most workloads above
0.6-0.9), thanks to events carrying their data, spatial binning and
line-granular edge streaming.  This benchmark regenerates the
utilization matrix from the functional engine's byte-level accounting.
"""

import pytest
from conftest import get_comparison, publish

from repro.analysis import ALGORITHMS, format_table
from repro.graph import dataset_names

_ROWS = {}


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("dataset", dataset_names())
def test_fig12_data_utilization(benchmark, dataset, algorithm):
    result = benchmark.pedantic(
        lambda: get_comparison(dataset, algorithm), rounds=1, iterations=1
    )
    utilization = result.data_utilization
    _ROWS[(algorithm, dataset)] = utilization
    assert 0.0 < utilization <= 1.0


def test_fig12_render_table(benchmark):
    def render():
        rows = []
        for algorithm in ALGORITHMS:
            for dataset in dataset_names():
                value = _ROWS.get((algorithm, dataset))
                if value is None:
                    value = get_comparison(
                        dataset, algorithm
                    ).data_utilization
                rows.append([algorithm, dataset, value])
        mean = sum(r[2] for r in rows) / len(rows)
        table = format_table(
            ["algorithm", "graph", "utilized fraction"],
            rows,
            title=(
                "Figure 12 (measured): fraction of off-chip data utilized "
                f"(mean {mean:.2f})"
            ),
        )
        publish("fig12_data_utilization", table)
        return mean

    mean = benchmark.pedantic(render, rounds=1, iterations=1)
    # data-carrying events keep utilization high on average
    assert mean > 0.35
