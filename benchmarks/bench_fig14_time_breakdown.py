"""Figure 14: time breakdown of processors and generation units.

The paper plots, per workload, the fraction of execution time the
processors spend in {vertex read, process, stall, idle} and the
generation units spend in {edge read, generate, stall, idle}, observing
that generation units are dominated by edge reads while processors
mostly wait on generators.

This benchmark regenerates both breakdowns from telemetry: the
``event``/``generate`` spans the cycle model emits are folded by
:func:`repro.obs.export.occupancy_breakdown` into the same activity
totals the model's occupancy counters accumulate, and the two sources
are asserted to agree before the table renders.
"""

import pytest
from conftest import publish

from repro.analysis import format_table, prepare_workload
from repro.core import build_engine
from repro.obs import Tracer, export, tracing

CYCLE_SCALES = {"WG": 0.06, "FB": 0.05, "LJ": 0.04}

WORKLOADS = [
    ("pagerank", "WG"),
    ("pagerank", "FB"),
    ("pagerank", "LJ"),
    ("sssp", "LJ"),
    ("cc", "LJ"),
]

_RESULTS = {}


def run_cycle_model(algorithm, dataset):
    """Run one workload under tracing; returns (result, activity totals)."""
    graph, spec = prepare_workload(
        dataset, algorithm, scale=CYCLE_SCALES[dataset]
    )
    with tracing(Tracer(categories=("proc", "gen"))) as tracer:
        result = build_engine("cycle", (graph, spec)).run().raw
    return result, export.occupancy_breakdown(tracer)


def _fractions(result, breakdown):
    """Figure 14 fractions from the telemetry activity totals."""
    cfg = result.config
    horizon = result.total_cycles
    proc_total = max(horizon * cfg.num_processors, 1)
    gen_total = max(horizon * cfg.total_generation_streams, 1)
    proc_busy = (
        breakdown["processor_vertex_read"]
        + breakdown["processor_process"]
        + breakdown["processor_stall"]
    )
    gen_busy = (
        breakdown["generator_edge_read"]
        + breakdown["generator_generate"]
        + breakdown["generator_stall"]
    )
    proc = {
        "vertex_read": breakdown["processor_vertex_read"] / proc_total,
        "process": breakdown["processor_process"] / proc_total,
        "stall": breakdown["processor_stall"] / proc_total,
        "idle": max(0.0, 1.0 - proc_busy / proc_total),
    }
    gen = {
        "edge_read": breakdown["generator_edge_read"] / gen_total,
        "generate": breakdown["generator_generate"] / gen_total,
        "stall": breakdown["generator_stall"] / gen_total,
        "idle": max(0.0, 1.0 - gen_busy / gen_total),
    }
    return proc, gen


@pytest.mark.parametrize("algorithm,dataset", WORKLOADS)
def test_fig14_occupancy(benchmark, algorithm, dataset):
    result, breakdown = benchmark.pedantic(
        lambda: run_cycle_model(algorithm, dataset), rounds=1, iterations=1
    )
    _RESULTS[(algorithm, dataset)] = (result, breakdown)
    # the telemetry activity totals must match the occupancy counters
    for key, total in breakdown.items():
        assert total == pytest.approx(getattr(result.occupancy, key))
    proc, gen = _fractions(result, breakdown)
    assert sum(proc.values()) == pytest.approx(1.0)
    assert sum(gen.values()) == pytest.approx(1.0)
    # generators spend more of their busy time on edge reads + generation
    # than processors spend computing (the paper's asymmetry)
    assert gen["edge_read"] + gen["generate"] > 0


def test_fig14_render_table(benchmark):
    def render():
        rows = []
        for algorithm, dataset in WORKLOADS:
            cached = _RESULTS.get((algorithm, dataset))
            if cached is None:
                cached = run_cycle_model(algorithm, dataset)
            result, breakdown = cached
            proc, gen = _fractions(result, breakdown)
            rows.append(
                [
                    algorithm,
                    dataset,
                    proc["vertex_read"],
                    proc["process"],
                    proc["stall"],
                    proc["idle"],
                    gen["edge_read"],
                    gen["generate"],
                    gen["stall"],
                    gen["idle"],
                ]
            )
        table = format_table(
            [
                "algorithm",
                "graph",
                "P:vtx-read",
                "P:process",
                "P:stall",
                "P:idle",
                "G:edge-read",
                "G:generate",
                "G:stall",
                "G:idle",
            ],
            rows,
            title=(
                "Figure 14 (measured): processor (P) and generator (G) "
                "time-fraction breakdown"
            ),
            float_format="{:.3f}",
        )
        publish("fig14_time_breakdown", table)
        return rows

    rows = benchmark.pedantic(render, rounds=1, iterations=1)
    assert len(rows) == len(WORKLOADS)
