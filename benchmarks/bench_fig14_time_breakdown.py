"""Figure 14: time breakdown of processors and generation units.

The paper plots, per workload, the fraction of execution time the
processors spend in {vertex read, process, stall, idle} and the
generation units spend in {edge read, generate, stall, idle}, observing
that generation units are dominated by edge reads while processors
mostly wait on generators.

This benchmark regenerates both breakdowns from the cycle-level model's
occupancy counters.
"""

import pytest
from conftest import publish

from repro.analysis import format_table, prepare_workload
from repro.core import GraphPulseAccelerator

CYCLE_SCALES = {"WG": 0.06, "FB": 0.05, "LJ": 0.04}

WORKLOADS = [
    ("pagerank", "WG"),
    ("pagerank", "FB"),
    ("pagerank", "LJ"),
    ("sssp", "LJ"),
    ("cc", "LJ"),
]

_RESULTS = {}


def run_cycle_model(algorithm, dataset):
    graph, spec = prepare_workload(
        dataset, algorithm, scale=CYCLE_SCALES[dataset]
    )
    return GraphPulseAccelerator(graph, spec).run()


@pytest.mark.parametrize("algorithm,dataset", WORKLOADS)
def test_fig14_occupancy(benchmark, algorithm, dataset):
    result = benchmark.pedantic(
        lambda: run_cycle_model(algorithm, dataset), rounds=1, iterations=1
    )
    _RESULTS[(algorithm, dataset)] = result
    cfg = result.config
    proc = result.occupancy.processor_fractions(
        result.total_cycles, cfg.num_processors
    )
    gen = result.occupancy.generator_fractions(
        result.total_cycles, cfg.total_generation_streams
    )
    assert sum(proc.values()) == pytest.approx(1.0)
    assert sum(gen.values()) == pytest.approx(1.0)
    # generators spend more of their busy time on edge reads + generation
    # than processors spend computing (the paper's asymmetry)
    assert gen["edge_read"] + gen["generate"] > 0


def test_fig14_render_table(benchmark):
    def render():
        rows = []
        for algorithm, dataset in WORKLOADS:
            result = _RESULTS.get((algorithm, dataset))
            if result is None:
                result = run_cycle_model(algorithm, dataset)
            cfg = result.config
            proc = result.occupancy.processor_fractions(
                result.total_cycles, cfg.num_processors
            )
            gen = result.occupancy.generator_fractions(
                result.total_cycles, cfg.total_generation_streams
            )
            rows.append(
                [
                    algorithm,
                    dataset,
                    proc["vertex_read"],
                    proc["process"],
                    proc["stall"],
                    proc["idle"],
                    gen["edge_read"],
                    gen["generate"],
                    gen["stall"],
                    gen["idle"],
                ]
            )
        table = format_table(
            [
                "algorithm",
                "graph",
                "P:vtx-read",
                "P:process",
                "P:stall",
                "P:idle",
                "G:edge-read",
                "G:generate",
                "G:stall",
                "G:idle",
            ],
            rows,
            title=(
                "Figure 14 (measured): processor (P) and generator (G) "
                "time-fraction breakdown"
            ),
            float_format="{:.3f}",
        )
        publish("fig14_time_breakdown", table)
        return rows

    rows = benchmark.pedantic(render, rounds=1, iterations=1)
    assert len(rows) == len(WORKLOADS)
