"""Section IV-F: slicing overhead for graphs exceeding on-chip capacity.

The paper splits Twitter into 3 slices and notes it still "achieves
comparable speedup to the other graphs, despite the overhead of
switching between active slices".  This benchmark runs PageRank on the
TW proxy unsliced and with 2/3/5 slices, reporting the spill traffic
overhead and verifying the fixed point never changes.
"""

import numpy as np
from conftest import publish

from repro.analysis import format_table, prepare_workload
from repro.core import build_engine
from repro.graph import contiguous_partition


def run_slicing_sweep():
    graph, spec = prepare_workload("TW", "pagerank", scale=0.04)
    unsliced = build_engine("functional", (graph, spec)).run().raw
    rows = [
        [
            "unsliced",
            0.0,
            0.0,
            unsliced.traffic.total_bytes_fetched / 1e6,
            0.0,
        ]
    ]
    results = {}
    for num_slices in (2, 3, 5):
        # same contiguous partition build_engine's default produces;
        # materialized here only for the cut-fraction column
        partition = contiguous_partition(graph, num_slices)
        result = build_engine(
            "sliced", (graph, spec), {"num_slices": num_slices}
        ).run().raw
        assert np.allclose(result.values, unsliced.values, atol=1e-7)
        results[num_slices] = result
        rows.append(
            [
                f"{num_slices} slices",
                partition.cut_fraction(),
                result.total_spill_bytes / 1e6,
                result.traffic.total_bytes_fetched / 1e6,
                result.spill_overhead(),
            ]
        )
    table = format_table(
        [
            "configuration",
            "cut fraction",
            "spill MB",
            "graph traffic MB",
            "spill overhead",
        ],
        rows,
        title=(
            "Section IV-F (measured): slicing overhead, PageRank on TW "
            "proxy"
        ),
    )
    publish("slicing_overhead", table)
    return results


def test_slicing_overhead(benchmark):
    results = benchmark.pedantic(run_slicing_sweep, rounds=1, iterations=1)
    # more slices -> more boundary crossings -> more spill traffic
    assert (
        results[5].total_spill_bytes >= results[2].total_spill_bytes
    )
    # but the overhead stays a bounded fraction of total traffic
    for result in results.values():
        assert result.spill_overhead() < 0.9
        assert result.converged
