"""Extension study: multi-accelerator slicing (Section IV-F, option b).

The paper processes slices one at a time (option a) and leaves "multiple
accelerator chips ... streaming inter-slice events in real-time" as an
unexplored alternative.  This benchmark runs PageRank on the TW proxy
with 1/2/4/8 parallel accelerators, measuring sequential steps (the
parallel analogue of rounds), inter-accelerator messages and load
balance.
"""

import numpy as np
from conftest import publish

from repro.analysis import format_table, prepare_workload
from repro.core import build_engine


def run_scaling_sweep():
    graph, spec = prepare_workload("TW", "pagerank", scale=0.03)
    single = build_engine("functional", (graph, spec)).run().raw
    rows = [["1 (monolithic)", single.num_rounds, 0, "1.00"]]
    results = {1: None}
    for num_accels in (2, 4, 8):
        result = build_engine(
            "parallel-sliced", (graph, spec), {"num_slices": num_accels}
        ).run().raw
        assert np.allclose(result.values, single.values, atol=1e-7)
        results[num_accels] = result
        rows.append(
            [
                str(num_accels),
                result.num_super_rounds,
                result.total_messages,
                f"{result.load_balance():.2f}",
            ]
        )
    table = format_table(
        [
            "accelerators",
            "sequential steps",
            "inter-chip messages",
            "load balance",
        ],
        rows,
        title=(
            "Extension (measured): multi-accelerator scaling, PageRank "
            "on TW proxy"
        ),
    )
    publish("multi_accelerator", table)
    return results


def test_multi_accelerator_scaling(benchmark):
    results = benchmark.pedantic(run_scaling_sweep, rounds=1, iterations=1)
    # more chips -> more inter-chip traffic (cut grows)
    assert (
        results[8].total_messages >= results[2].total_messages
    )
    for num_accels in (2, 4, 8):
        assert results[num_accels].converged
        assert 0.0 < results[num_accels].load_balance() <= 1.0
