"""Figure 4: events produced vs remaining after coalescing, per round.

The paper runs PageRank on LiveJournal and shows that "over 90% of the
events are eliminated via coalescing multiple events destined to the
same vertex".  This benchmark reproduces the two series (total events
produced each round — blue in the paper — and events remaining after
coalescing — orange) on the LJ proxy, and asserts the headline
elimination rate.
"""

from conftest import publish

from repro.analysis import format_series, prepare_workload
from repro.core import build_engine


def regenerate_figure4():
    graph, spec = prepare_workload("LJ", "pagerank", scale=0.5)
    result = build_engine("functional", (graph, spec)).run().raw
    produced = [float(r.events_produced) for r in result.rounds]
    remaining = [float(r.events_remaining) for r in result.rounds]
    text = format_series(
        {"produced": produced, "remaining_after_coalescing": remaining},
        x_label="round",
        title=(
            "Figure 4 (measured): PageRank on LJ proxy — events produced "
            "vs remaining after coalescing"
        ),
    )
    publish("fig04_coalescing", text)
    return result


def test_fig04_event_coalescing(benchmark):
    result = benchmark.pedantic(regenerate_figure4, rounds=1, iterations=1)
    # paper: >90% of events eliminated on LiveJournal
    assert result.coalesce_rate() > 0.80
    # the remaining population is far below production in every busy round
    busy = [r for r in result.rounds if r.events_produced > 1000]
    assert busy, "run produced no busy rounds"
    for record in busy:
        assert record.events_remaining < record.events_produced
