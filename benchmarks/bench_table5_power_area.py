"""Table V + Section VI-B energy: power, area and energy efficiency.

Regenerates the paper's Table V (per-component static/dynamic power and
area) from the activity counters of an actual simulated PageRank run,
and the Section VI-B headline that GraphPulse is ~280x more
energy-efficient than the software framework (accelerator power x
accelerator time vs CPU package power x Ligra time, DRAM excluded on
both sides as in the paper).
"""

from conftest import get_comparison, publish

from repro.analysis import format_table
from repro.power import PowerModel, energy_efficiency_ratio


def regenerate_table5():
    comparison = get_comparison("LJ", "pagerank")
    functional = comparison.functional
    runtime = comparison.graphpulse.seconds

    report = PowerModel().report(
        runtime_seconds=runtime,
        queue_ops=functional.total_events_produced
        + functional.total_events_processed,
        scratchpad_ops=functional.traffic.vertex_reads
        + functional.traffic.vertex_writes,
        network_ops=functional.total_events_produced,
        processing_ops=functional.total_events_processed,
    )

    rows = [
        [
            name,
            int(row["count"]),
            row["static_mw"],
            row["dynamic_mw"],
            row["total_mw"],
            row["area_mm2"],
        ]
        for name, row in report.rows.items()
    ]
    rows.append(
        [
            "TOTAL",
            "-",
            report.total_static_mw,
            report.total_dynamic_mw,
            report.total_static_mw + report.total_dynamic_mw,
            report.total_area_mm2,
        ]
    )
    efficiency = energy_efficiency_ratio(
        report, software_seconds=comparison.ligra.seconds
    )
    table = format_table(
        ["component", "#", "static mW", "dynamic mW", "total mW", "area mm2"],
        rows,
        title=(
            "Table V (regenerated): power and area of accelerator "
            "components\n"
            f"energy efficiency vs software: {efficiency:.0f}x "
            "(paper: 280x)"
        ),
    )
    publish("table5_power_area", table)
    return report, efficiency


def test_table5_power_area(benchmark):
    report, efficiency = benchmark.pedantic(
        regenerate_table5, rounds=1, iterations=1
    )
    # Table V shape: the queue dominates both power and area
    queue = report.rows["queue"]
    for name, row in report.rows.items():
        if name != "queue":
            assert queue["total_mw"] > row["total_mw"]
            assert queue["area_mm2"] > row["area_mm2"]
    # the accelerator is orders of magnitude more energy-efficient
    assert efficiency > 20
