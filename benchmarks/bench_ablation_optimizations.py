"""Ablation: the Section V optimizations (prefetch + parallel generation).

Figure 10 plots both the GraphPulse baseline and the optimized design;
the paper notes "the two optimizations dramatically improve
performance" and that the optimized design needs only 8 processors
instead of 256.  This benchmark isolates each optimization's
contribution on the LJ proxy: baseline (256 procs, neither), prefetch
only, parallel generation only, and both (the Table III configuration).
"""

from conftest import publish

from repro.analysis import format_table, prepare_workload, time_graphpulse
from repro.core import GraphPulseConfig, build_engine

CONFIGS = [
    (
        "baseline (256 proc)",
        GraphPulseConfig(
            num_processors=256,
            prefetch_enabled=False,
            parallel_generation_enabled=False,
        ),
    ),
    (
        "+ prefetch only",
        GraphPulseConfig(
            num_processors=8,
            prefetch_enabled=True,
            parallel_generation_enabled=False,
        ),
    ),
    (
        "+ parallel gen only",
        GraphPulseConfig(
            num_processors=256,
            prefetch_enabled=False,
            parallel_generation_enabled=True,
        ),
    ),
    (
        "optimized (8 proc)",
        GraphPulseConfig(
            num_processors=8,
            prefetch_enabled=True,
            parallel_generation_enabled=True,
        ),
    ),
]


def run_ablation():
    graph, spec = prepare_workload("LJ", "pagerank", scale=0.3)
    functional = build_engine("functional", (graph, spec)).run().raw
    rows = []
    timings = {}
    for name, config in CONFIGS:
        timing = time_graphpulse(functional.rounds, config)
        timings[name] = timing
        rows.append(
            [
                name,
                timing.total_cycles,
                timing.seconds * 1e6,
                timing.offchip_bytes / 1e6,
                timing.dominant_bound(),
            ]
        )
    table = format_table(
        ["configuration", "cycles", "time (us)", "off-chip MB", "bound"],
        rows,
        title="Ablation (measured): Section V optimizations on LJ/PageRank",
    )
    publish("ablation_optimizations", table)
    return timings


def test_ablation_optimizations(benchmark):
    timings = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    baseline = timings["baseline (256 proc)"]
    optimized = timings["optimized (8 proc)"]
    # the paper's claim: optimizations dominate despite 32x fewer procs
    assert optimized.total_cycles < baseline.total_cycles
    # prefetching is the bigger lever (it removes per-event line traffic)
    assert (
        timings["+ prefetch only"].offchip_bytes < baseline.offchip_bytes
    )
