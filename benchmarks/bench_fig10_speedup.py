"""Figure 10: speedup over the Ligra software framework.

The paper's headline result: GraphPulse achieves 10-74x (28x average)
speedup over Ligra on a 12-core Xeon, and 6.2x average over
Graphicionado, across 5 algorithms x 5 graphs; the optimized design
(prefetching + parallel event generation) far outperforms the Section-IV
baseline.

This benchmark regenerates the full matrix on the Table IV proxies.  We
do not expect the paper's absolute factors (our substrate is an analytic
Python model and the proxies are ~100x smaller — see EXPERIMENTS.md);
the asserted *shape* is: GraphPulse beats Ligra everywhere, beats
Graphicionado everywhere, and the optimizations help.
"""

import pytest
from conftest import SWEEP_SCALES, get_comparison, publish

from repro.analysis import ALGORITHMS, format_table, geometric_mean
from repro.graph import dataset_names

_ROWS = {}


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("dataset", dataset_names())
def test_fig10_speedup(benchmark, dataset, algorithm):
    result = benchmark.pedantic(
        lambda: get_comparison(dataset, algorithm), rounds=1, iterations=1
    )
    summary = result.summary()
    _ROWS[(algorithm, dataset)] = summary
    # shape assertions per workload
    assert summary["speedup_vs_ligra"] > 1.0, "GraphPulse must beat Ligra"
    assert (
        summary["speedup_vs_graphicionado"] > 1.0
    ), "GraphPulse must beat Graphicionado"
    assert (
        summary["speedup_vs_ligra"]
        >= summary["baseline_speedup_vs_ligra"]
    ), "optimizations must not hurt"


def test_fig10_render_table(benchmark):
    """Aggregates the sweep into the Figure 10 table (runs last)."""

    def render():
        rows = []
        for algorithm in ALGORITHMS:
            for dataset in dataset_names():
                summary = _ROWS.get(
                    (algorithm, dataset)
                ) or get_comparison(dataset, algorithm).summary()
                rows.append(
                    [
                        algorithm,
                        dataset,
                        summary["speedup_vs_ligra"],
                        summary["baseline_speedup_vs_ligra"],
                        summary["speedup_vs_graphicionado"],
                    ]
                )
        avg = geometric_mean([r[2] for r in rows])
        avg_gio = geometric_mean([r[4] for r in rows])
        table = format_table(
            [
                "algorithm",
                "graph",
                "GraphPulse+opt / Ligra",
                "GraphPulse-base / Ligra",
                "GraphPulse / Graphicionado",
            ],
            rows,
            title=(
                "Figure 10 (measured): speedups, higher is better\n"
                f"(geomean vs Ligra: {avg:.1f}x — paper: 28x; "
                f"geomean vs Graphicionado: {avg_gio:.1f}x — paper: 6.2x)\n"
                f"sweep scales: {SWEEP_SCALES}"
            ),
        )
        publish("fig10_speedup", table)
        return avg, avg_gio

    avg, avg_gio = benchmark.pedantic(render, rounds=1, iterations=1)
    assert avg > 2.0  # decisively faster than software on average
    assert avg_gio > 1.0  # faster than the accelerator baseline
