"""Shared infrastructure for the benchmark harness.

Each benchmark regenerates one table or figure from the paper's
evaluation (Section VI).  Results are printed and also written to
``benchmarks/results/<name>.txt`` so a full run leaves the regenerated
artifacts on disk.

Workload scales
---------------
The proxies (see ``repro.graph.datasets``) are already scaled-down
stand-ins for the Table IV graphs; the benchmark harness scales them
further so a full sweep finishes in minutes of pure Python.  The scale
factors below keep every dataset's *relative* size ordering (TW largest,
WG smallest workload per edge) while bounding per-run cost.  Figures
that need the full proxy (4, 8) use scale 1.0 on their single workload.
"""

import os
from pathlib import Path

from repro.analysis import run_comparison
from repro.ioutil import atomic_write_text

#: per-dataset extra scaling for the 5x5 sweep benchmarks
SWEEP_SCALES = {
    "WG": 0.35,
    "FB": 0.25,
    "WK": 0.25,
    "LJ": 0.20,
    "TW": 0.05,
}

RESULTS_DIR = Path(__file__).parent / "results"

_COMPARISON_CACHE = {}


def get_comparison(dataset: str, algorithm: str):
    """Run (or reuse) the cross-system comparison for one workload.

    Figures 10, 11 and 12 all read the same sweep; caching makes the
    harness run each workload once.
    """
    key = (dataset, algorithm)
    if key not in _COMPARISON_CACHE:
        _COMPARISON_CACHE[key] = run_comparison(
            dataset,
            algorithm,
            scale=SWEEP_SCALES[dataset],
            verify=False,
        )
    return _COMPARISON_CACHE[key]


def publish(name: str, text: str) -> None:
    """Print a regenerated artifact and persist it under results/.

    Written atomically (temp file + rename) so an interrupted run never
    leaves a truncated artifact under a valid name.
    """
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(RESULTS_DIR / f"{name}.txt", text + "\n")
